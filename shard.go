package insight

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/insight-dublin/insight/interval"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// engineTier abstracts the recognition tier behind System: the legacy
// fixed partitioning (*rtec.Partitioned, the paper's four-region
// split) and the N-way sharded tier (shardTier) expose the same
// surface to the feed/evaluate/checkpoint machinery.
type engineTier interface {
	Input(events ...rtec.Event) error
	InputBlockRows(b *rtec.Block, rows []int32) error
	Query(q Time) ([]*rtec.Result, error)
	Snapshot() ([]*rtec.EngineSnapshot, error)
	Restore(snaps []*rtec.EngineSnapshot) error
}

// tierID is a derived-event identity for the tier-level Fresh dedup
// (the cross-shard mirror of the engine's derivedID).
type tierID struct {
	typ  string
	key  string
	time Time
}

// Names of the tier-state pseudo-fluents inside the tier snapshot.
// The '~' prefix cannot collide with rule names (the builder's name
// space is plain identifiers).
const (
	tierSnapOverrides = "~shard/overrides"
	tierSnapLoad      = "~shard/load"
	tierSnapMeta      = "~shard/meta"

	tierMetaRebalances = "rebalances"
)

// shardTier is the N-way sharded recognition tier (see DESIGN.md,
// "Sharded recognition tier"):
//
//   - bus move events are routed to the shard owning the bus
//     (rendezvous assignment + rebalance overrides); sensor and crowd
//     SDEs are replicated to every shard;
//   - each shard runs the shard-local rule set (traffic.BuildShard)
//     over its own RTEC engine; shards evaluate concurrently;
//   - a reduce engine (traffic.BuildReduce) folds the shards'
//     busCongVote events into the city-wide busCongestion fluent, and
//     the tier derives sourceDisagreement from the reduced fluent;
//   - a tier-level Fresh dedup collapses identical derived events
//     reported by different shards (e.g. two shards' buses disagreeing
//     with the same intersection at the same second) to the same
//     canonical survivor a single engine would keep;
//   - skew-driven rebalancing migrates the hottest bus keys off an
//     overloaded shard through the store-independent snapshot path.
//
// Not safe for concurrent use: like the engines beneath it, the tier
// assumes one caller (the recognition processor).
type shardTier struct {
	wm     Time              //state:transient config (Config.WorkingMemory), set at construction
	reg    *traffic.Registry //state:transient config, injected at construction
	assign *rtec.ShardMap
	shards []*rtec.Engine
	reduce *rtec.Engine

	// sensorOwner snapshots the sensor→shard assignment for the
	// OwnsSensor closures, which run during concurrent shard
	// evaluation; it is rebuilt whenever overrides change (always
	// between queries), so queries only ever read it.
	//state:derived rebuilt from assign by rebuildSensorOwner
	sensorOwner map[string]int

	// seen is the tier-level Fresh dedup set, pruned as identities
	// fall out of the window.
	seen map[tierID]bool

	// keyLoad counts routed move events per bus key since the last
	// completed skew check — the deterministic rebalance signal.
	keyLoad map[string]int
	// factor triggers a rebalance when the loaded shard exceeds
	// factor × average routed moves; <= 0 disables automatic
	// rebalancing (manual Rebalance still works).
	factor float64 //state:transient config (Config.RebalanceFactor)
	// minMoves is the minimum routed moves across all shards before a
	// skew check concludes (below it, counts keep accumulating).
	minMoves   int //state:transient config (Config.RebalanceMinMoves)
	rebalances int // carried in the ~shard/meta snapshot section

	// critical accumulates the modeled distributed critical path:
	// per boundary, the slowest shard's evaluation plus the reduce
	// evaluation (shards run in parallel, the reduce after them).
	// Measured wall time, not recognition state: a restored tier
	// starts its own accumulation.
	//state:transient modeled bench accumulator over measured elapsed times
	critical time.Duration

	// serial evaluates shards one after another instead of
	// concurrently (Config.ShardSerialEval, the shardbench measurement
	// mode). Output is identical either way.
	serial bool //state:transient config (Config.ShardSerialEval)

	scratch [][]int32    //state:transient per-shard row routing scratch buffers
	voteBuf []rtec.Event //state:transient reusable vote collection buffer
}

// newShardTier assembles n shard engines plus the reduce engine.
func newShardTier(cfg Config, tcfg traffic.Config, reg *traffic.Registry) (*shardTier, error) {
	n := cfg.Shards
	assign, err := rtec.NewShardMap(n)
	if err != nil {
		return nil, err
	}
	t := &shardTier{
		wm:          cfg.WorkingMemory,
		reg:         reg,
		assign:      assign,
		shards:      make([]*rtec.Engine, n),
		sensorOwner: make(map[string]int),
		seen:        make(map[tierID]bool),
		keyLoad:     make(map[string]int),
		factor:      cfg.RebalanceFactor,
		minMoves:    cfg.RebalanceMinMoves,
		serial:      cfg.ShardSerialEval,
	}
	if t.minMoves <= 0 {
		t.minMoves = 64 * n
	}
	opts := rtec.Options{
		WorkingMemory: cfg.WorkingMemory,
		Step:          cfg.Step,
		Store:         cfg.Store,
	}
	for i := range t.shards {
		i := i
		defs, err := traffic.BuildShard(tcfg, traffic.ShardPlan{
			OwnsSensor: func(sensor string) bool {
				if o, ok := t.sensorOwner[sensor]; ok {
					return o == i
				}
				// Unknown sensor: pure rendezvous fallback (no memo,
				// safe under concurrent evaluation).
				return rtec.RendezvousShard(sensor, n) == i
			},
		})
		if err != nil {
			return nil, fmt.Errorf("insight: shard %d rules: %w", i, err)
		}
		if t.shards[i], err = rtec.NewEngine(defs, opts); err != nil {
			return nil, fmt.Errorf("insight: shard %d engine: %w", i, err)
		}
	}
	rdefs, err := traffic.BuildReduce(tcfg)
	if err != nil {
		return nil, fmt.Errorf("insight: reduce rules: %w", err)
	}
	if t.reduce, err = rtec.NewEngine(rdefs, opts); err != nil {
		return nil, fmt.Errorf("insight: reduce engine: %w", err)
	}
	t.rebuildSensorOwner()
	return t, nil
}

func (t *shardTier) rebuildSensorOwner() {
	for _, in := range t.reg.Intersections() {
		for _, s := range in.Sensors {
			t.sensorOwner[s] = t.assign.Shard(s)
		}
	}
}

// Input routes events: moves to the owner shard, everything else to
// every shard (replication).
func (t *shardTier) Input(events ...rtec.Event) error {
	for _, ev := range events {
		if ev.Type == traffic.MoveType {
			t.keyLoad[ev.Key]++
			if err := t.shards[t.assign.Shard(ev.Key)].Input(ev); err != nil {
				return err
			}
			continue
		}
		for _, e := range t.shards {
			if err := e.Input(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// InputBlockRows routes the given rows of a columnar block: move blocks
// are split per owner shard (order-preserving, like the legacy
// partition router), replicated types go to every shard whole.
func (t *shardTier) InputBlockRows(b *rtec.Block, rows []int32) error {
	if b.Type != traffic.MoveType {
		for _, e := range t.shards {
			if err := e.InputBlockRows(b, rows); err != nil {
				return err
			}
		}
		return nil
	}
	if t.scratch == nil {
		t.scratch = make([][]int32, len(t.shards))
	}
	for i := range t.scratch {
		t.scratch[i] = t.scratch[i][:0]
	}
	route := func(r int32) {
		key := b.Key(int(r))
		t.keyLoad[key]++
		i := t.assign.Shard(key)
		t.scratch[i] = append(t.scratch[i], r)
	}
	if rows == nil {
		n := b.Len()
		for r := 0; r < n; r++ {
			route(int32(r))
		}
	} else {
		for _, r := range rows {
			route(r)
		}
	}
	for i, part := range t.scratch {
		if len(part) == 0 {
			continue
		}
		if err := t.shards[i].InputBlockRows(b, part); err != nil {
			return err
		}
	}
	return nil
}

// Query evaluates every shard concurrently, folds their votes through
// the reduce engine, derives the cross-shard CEs and collapses the
// Fresh sets. The returned slice is the per-shard results followed by
// the reduce result; MergeResults over it is the tier's merged view.
func (t *shardTier) Query(q Time) ([]*rtec.Result, error) {
	if err := t.maybeRebalance(); err != nil {
		return nil, err
	}

	results := make([]*rtec.Result, len(t.shards))
	errs := make([]error, len(t.shards))
	if t.serial {
		for i, e := range t.shards {
			results[i], errs[i] = e.Query(q)
		}
	} else {
		var wg sync.WaitGroup
		for i, e := range t.shards {
			wg.Add(1)
			go func(i int, e *rtec.Engine) {
				defer wg.Done()
				results[i], errs[i] = e.Query(q)
			}(i, e)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Strip the busCongVote plumbing out of the shard results and
	// forward this boundary's fresh votes to the reduce engine. Vote
	// identities are unique across shards (each bus has one owner and
	// migration moves its dedup state along), so sorting by (time,
	// key) makes the reduce input order independent of shard count.
	votes := t.voteBuf[:0]
	for _, res := range results {
		delete(res.Derived, traffic.BusCongVote)
		keep := res.Fresh[:0]
		for _, ev := range res.Fresh {
			if ev.Type == traffic.BusCongVote {
				votes = append(votes, ev)
			} else {
				keep = append(keep, ev)
			}
		}
		res.Fresh = keep
	}
	sort.Slice(votes, func(i, j int) bool {
		if votes[i].Time != votes[j].Time {
			return votes[i].Time < votes[j].Time
		}
		return votes[i].Key < votes[j].Key
	})
	if err := t.reduce.Input(votes...); err != nil {
		return nil, err
	}
	t.voteBuf = votes[:0]
	rres, err := t.reduce.Query(q)
	if err != nil {
		return nil, err
	}

	// sourceDisagreement = busCongestion \ scatsIntCongestion, per
	// SCATS intersection, over the window. The single-engine rule
	// computes the complement of the un-clipped lists and clips; over
	// the window the two are pointwise equal, and both sides are
	// normalized interval lists, so the representations coincide.
	scats := results[0].Fluents[traffic.ScatsIntCongestion]
	bus := rres.Fluents[traffic.BusCongestion]
	var sd map[rtec.KV]rtec.List
	for _, in := range t.reg.Intersections() {
		kv := rtec.KV{Key: in.ID, Value: rtec.TrueValue}
		busI := bus[kv]
		if len(busI) == 0 {
			continue
		}
		scatsI := scats[kv]
		if d := interval.RelativeComplementAll(busI, []interval.List{scatsI}); len(d) > 0 {
			if sd == nil {
				sd = make(map[rtec.KV]rtec.List)
			}
			sd[kv] = d
		}
	}
	if sd != nil {
		rres.Fluents[traffic.SourceDisagreement] = sd
	}

	t.dedupFresh(q, results)

	var slowest time.Duration
	for _, res := range results {
		if res.Stats.Elapsed > slowest {
			slowest = res.Stats.Elapsed
		}
	}
	t.critical += slowest + rres.Stats.Elapsed

	return append(results, rres), nil
}

// dedupFresh collapses same-identity derived events reported fresh by
// several shards into the one canonical survivor (smallest
// rtec.CanonicalAttrs) — the same choice a single engine makes among
// same-identity derivations — and suppresses identities some shard
// already reported at an earlier boundary (which happens when a
// migrated bus's intersection-keyed disagreements are re-derived by
// the new owner).
func (t *shardTier) dedupFresh(q Time, results []*rtec.Result) {
	type pick struct {
		res, idx int
		canon    string
	}
	best := make(map[tierID]pick)
	for ri, res := range results {
		for ei, ev := range res.Fresh {
			id := tierID{typ: ev.Type, key: ev.Key, time: ev.Time}
			if t.seen[id] {
				continue
			}
			c := rtec.CanonicalAttrs(ev)
			if p, ok := best[id]; !ok || c < p.canon {
				best[id] = pick{res: ri, idx: ei, canon: c}
			}
		}
	}
	for ri, res := range results {
		keep := res.Fresh[:0]
		for ei, ev := range res.Fresh {
			id := tierID{typ: ev.Type, key: ev.Key, time: ev.Time}
			if t.seen[id] {
				continue
			}
			if p := best[id]; p.res == ri && p.idx == ei {
				keep = append(keep, ev)
			}
		}
		res.Fresh = keep
	}
	for id := range best {
		t.seen[id] = true
	}
	for id := range t.seen {
		if id.time <= q-t.wm {
			delete(t.seen, id)
		}
	}
}

// maybeRebalance runs the deterministic skew check: once at least
// minMoves moves have been routed since the last check, and the most
// loaded shard exceeds factor × the average, the hottest keys migrate
// from it to the least loaded shard until the excess is covered.
// Driven purely by routed-event counts — never wall-clock — so the
// same input stream rebalances identically on every run.
func (t *shardTier) maybeRebalance() error {
	if t.factor <= 0 || len(t.shards) < 2 {
		return nil
	}
	total := 0
	loads := make([]int, len(t.shards))
	for k, n := range t.keyLoad {
		loads[t.assign.Shard(k)] += n
		total += n
	}
	if total < t.minMoves {
		return nil // keep accumulating signal
	}
	maxI, minI := 0, 0
	for i, l := range loads {
		if l > loads[maxI] {
			maxI = i
		}
		if l < loads[minI] {
			minI = i
		}
	}
	avg := float64(total) / float64(len(t.shards))
	if maxI == minI || float64(loads[maxI]) <= t.factor*avg {
		clear(t.keyLoad)
		return nil
	}
	type keyCount struct {
		key string
		n   int
	}
	var hot []keyCount
	for k, n := range t.keyLoad {
		if t.assign.Shard(k) == maxI {
			hot = append(hot, keyCount{k, n})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].key < hot[j].key
	})
	excess := loads[maxI] - int(avg)
	var keys []string
	for _, h := range hot {
		if excess <= 0 || len(keys) >= len(hot)-1 {
			break // always leave the coldest key behind
		}
		keys = append(keys, h.key)
		excess -= h.n
	}
	clear(t.keyLoad)
	if len(keys) == 0 {
		return nil
	}
	if err := t.migrate(keys, maxI, minI); err != nil {
		return err
	}
	t.rebalances++
	return nil
}

// RebalanceKeys migrates the given keys (bus or sensor IDs) to shard
// `to`, wherever they currently live.
func (t *shardTier) RebalanceKeys(keys []string, to int) error {
	if to < 0 || to >= len(t.shards) {
		return fmt.Errorf("insight: rebalance target shard %d out of range [0,%d)", to, len(t.shards))
	}
	byShard := make(map[int][]string)
	for _, k := range keys {
		if from := t.assign.Shard(k); from != to {
			byShard[from] = append(byShard[from], k)
		}
	}
	froms := make([]int, 0, len(byShard))
	for from := range byShard {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	for _, from := range froms {
		if err := t.migrate(byShard[from], from, to); err != nil {
			return err
		}
	}
	if len(byShard) > 0 {
		t.rebalances++
	}
	return nil
}

// migrate moves the given keys' state from one shard to another
// through the store-independent snapshot path: the owner-routed move
// events, the owner-scoped fluent instances, and the dedup entries
// keyed by a migrated key (or a vote key with a migrated bus prefix).
// Both engines restart cold (Restore clears the splice caches), which
// is also what makes the ownership flip safe: no cached rule output
// computed under the old assignment survives it.
func (t *shardTier) migrate(keys []string, from, to int) error {
	if from == to || len(keys) == 0 {
		return nil
	}
	moved := make(map[string]bool, len(keys))
	for _, k := range keys {
		moved[k] = true
	}
	snapF, err := t.shards[from].Snapshot()
	if err != nil {
		return fmt.Errorf("insight: migrate: snapshot shard %d: %w", from, err)
	}
	snapT, err := t.shards[to].Snapshot()
	if err != nil {
		return fmt.Errorf("insight: migrate: snapshot shard %d: %w", to, err)
	}

	// 1. Owner-routed SDE rows: the migrated buses' move events.
	for ti := range snapF.Types {
		ts := &snapF.Types[ti]
		if ts.Type != traffic.MoveType {
			continue
		}
		stay := ts.Events[:0]
		var go_ []rtec.EventSnapshot
		for _, es := range ts.Events {
			if moved[es.Key] {
				go_ = append(go_, es)
			} else {
				stay = append(stay, es)
			}
		}
		if len(go_) == 0 {
			break
		}
		ts.Events = stay
		dest := findOrAddType(snapT, traffic.MoveType)
		dest.Events = mergeEventSnaps(dest.Events, go_)
		if ts.LateMin < dest.LateMin {
			// Conservative dirty floor; only the first (already cold,
			// full-recompute) post-restore query sees it.
			dest.LateMin = ts.LateMin
		}
		break
	}

	// 2. Owner-scoped fluent instances (noisy, trends, warnings).
	scoped := make(map[string]bool)
	for _, name := range traffic.OwnerScopedFluents() {
		scoped[name] = true
	}
	for fi := range snapF.Prev {
		fs := &snapF.Prev[fi]
		if !scoped[fs.Name] {
			continue
		}
		stay := fs.Instances[:0]
		var go_ []rtec.InstanceSnapshot
		for _, inst := range fs.Instances {
			if moved[inst.Key] {
				go_ = append(go_, inst)
			} else {
				stay = append(stay, inst)
			}
		}
		if len(go_) == 0 {
			continue
		}
		fs.Instances = stay
		dest := findOrAddFluent(snapT, fs.Name)
		dest.Instances = append(dest.Instances, go_...)
		sort.Slice(dest.Instances, func(i, j int) bool {
			a, b := dest.Instances[i], dest.Instances[j]
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.Value < b.Value
		})
	}

	// 3. Fresh-dedup entries owned by a migrated key, so the new owner
	// does not re-report the old owner's derived events.
	staySeen := snapF.Seen[:0]
	var goSeen []rtec.SeenEntry
	for _, se := range snapF.Seen {
		if moved[traffic.VoteBus(se.Key)] {
			goSeen = append(goSeen, se)
		} else {
			staySeen = append(staySeen, se)
		}
	}
	snapF.Seen = staySeen
	snapT.Seen = append(snapT.Seen, goSeen...)

	if err := t.shards[from].Restore(snapF); err != nil {
		return fmt.Errorf("insight: migrate: restore shard %d: %w", from, err)
	}
	if err := t.shards[to].Restore(snapT); err != nil {
		return fmt.Errorf("insight: migrate: restore shard %d: %w", to, err)
	}
	for _, k := range keys {
		if err := t.assign.SetOverride(k, to); err != nil {
			return err
		}
	}
	t.rebuildSensorOwner()
	return nil
}

func findOrAddType(snap *rtec.EngineSnapshot, typ string) *rtec.TypeSnapshot {
	for i := range snap.Types {
		if snap.Types[i].Type == typ {
			return &snap.Types[i]
		}
	}
	snap.Types = append(snap.Types, rtec.TypeSnapshot{Type: typ, LateMin: interval.MaxTime})
	return &snap.Types[len(snap.Types)-1]
}

func findOrAddFluent(snap *rtec.EngineSnapshot, name string) *rtec.FluentSnapshot {
	for i := range snap.Prev {
		if snap.Prev[i].Name == name {
			return &snap.Prev[i]
		}
	}
	snap.Prev = append(snap.Prev, rtec.FluentSnapshot{Name: name})
	return &snap.Prev[len(snap.Prev)-1]
}

// mergeEventSnaps merges two time-sorted event snapshot runs, existing
// events first on time ties. Tie order is unobservable: transition and
// vote derivation are set-semantics folds, and per-key sub-orders are
// preserved (a bus's events only ever move together).
func mergeEventSnaps(a, b []rtec.EventSnapshot) []rtec.EventSnapshot {
	if len(b) == 0 {
		return a
	}
	out := make([]rtec.EventSnapshot, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Time < a[i].Time {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Snapshot captures the whole tier: every shard engine, the reduce
// engine, and a trailing tier-state pseudo-snapshot holding the
// cross-shard dedup set, the assignment overrides and the rebalance
// counters — so a restored tier routes, dedups and rebalances exactly
// like the original.
func (t *shardTier) Snapshot() ([]*rtec.EngineSnapshot, error) {
	out := make([]*rtec.EngineSnapshot, 0, len(t.shards)+2)
	for i, e := range t.shards {
		s, err := e.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("insight: shard %d: %w", i, err)
		}
		out = append(out, s)
	}
	rs, err := t.reduce.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("insight: reduce: %w", err)
	}
	out = append(out, rs, t.stateSnapshot())
	return out, nil
}

func (t *shardTier) stateSnapshot() *rtec.EngineSnapshot {
	s := &rtec.EngineSnapshot{}
	for id := range t.seen {
		s.Seen = append(s.Seen, rtec.SeenEntry{Type: id.typ, Key: id.key, Time: id.time})
	}
	sort.Slice(s.Seen, func(i, j int) bool {
		a, b := s.Seen[i], s.Seen[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Time < b.Time
	})
	ovs := rtec.FluentSnapshot{Name: tierSnapOverrides}
	for _, o := range t.assign.Overrides() {
		ovs.Instances = append(ovs.Instances, rtec.InstanceSnapshot{Key: o.Key, Value: strconv.Itoa(o.Shard)})
	}
	load := rtec.FluentSnapshot{Name: tierSnapLoad}
	loadKeys := make([]string, 0, len(t.keyLoad))
	for k := range t.keyLoad {
		loadKeys = append(loadKeys, k)
	}
	sort.Strings(loadKeys)
	for _, k := range loadKeys {
		load.Instances = append(load.Instances, rtec.InstanceSnapshot{Key: k, Value: strconv.Itoa(t.keyLoad[k])})
	}
	meta := rtec.FluentSnapshot{Name: tierSnapMeta, Instances: []rtec.InstanceSnapshot{
		{Key: tierMetaRebalances, Value: strconv.Itoa(t.rebalances)},
	}}
	s.Prev = []rtec.FluentSnapshot{ovs, load, meta}
	return s
}

// Restore replaces the tier's state from a Snapshot: len(shards)
// engine snapshots, the reduce snapshot, then the tier state.
func (t *shardTier) Restore(snaps []*rtec.EngineSnapshot) error {
	if len(snaps) != len(t.shards)+2 {
		return fmt.Errorf("insight: %d snapshots for %d shards (+reduce, +tier state)", len(snaps), len(t.shards))
	}
	st := snaps[len(t.shards)+1]
	assign, err := rtec.NewShardMap(len(t.shards))
	if err != nil {
		return err
	}
	keyLoad := make(map[string]int)
	rebalances := 0
	for _, fs := range st.Prev {
		switch fs.Name {
		case tierSnapOverrides:
			for _, inst := range fs.Instances {
				shard, err := strconv.Atoi(inst.Value)
				if err != nil {
					return fmt.Errorf("insight: tier snapshot override %q: %w", inst.Key, err)
				}
				if err := assign.SetOverride(inst.Key, shard); err != nil {
					return err
				}
			}
		case tierSnapLoad:
			for _, inst := range fs.Instances {
				n, err := strconv.Atoi(inst.Value)
				if err != nil {
					return fmt.Errorf("insight: tier snapshot load %q: %w", inst.Key, err)
				}
				keyLoad[inst.Key] = n
			}
		case tierSnapMeta:
			for _, inst := range fs.Instances {
				switch inst.Key {
				case tierMetaRebalances:
					n, err := strconv.Atoi(inst.Value)
					if err != nil {
						return fmt.Errorf("insight: tier snapshot rebalances %q: %w", inst.Value, err)
					}
					rebalances = n
				default:
					return fmt.Errorf("insight: unknown tier snapshot meta key %q", inst.Key)
				}
			}
		default:
			return fmt.Errorf("insight: unknown tier snapshot section %q", fs.Name)
		}
	}
	for i, e := range t.shards {
		if err := e.Restore(snaps[i]); err != nil {
			return fmt.Errorf("insight: shard %d: %w", i, err)
		}
	}
	if err := t.reduce.Restore(snaps[len(t.shards)]); err != nil {
		return fmt.Errorf("insight: reduce: %w", err)
	}
	t.assign = assign
	t.keyLoad = keyLoad
	t.rebalances = rebalances
	t.seen = make(map[tierID]bool, len(st.Seen))
	for _, se := range st.Seen {
		t.seen[tierID{typ: se.Type, key: se.Key, time: se.Time}] = true
	}
	t.rebuildSensorOwner()
	return nil
}

// Shards returns the configured shard count of the recognition tier,
// or 0 when the system runs the legacy fixed partitioning.
func (s *System) Shards() int {
	if t, ok := s.engines.(*shardTier); ok {
		return len(t.shards)
	}
	return 0
}

// ShardRebalances returns how many key migrations the tier has
// performed (automatic and manual). 0 on the legacy partitioning.
func (s *System) ShardRebalances() int {
	if t, ok := s.engines.(*shardTier); ok {
		return t.rebalances
	}
	return 0
}

// Rebalance migrates the given keys (bus or sensor IDs) to shard `to`
// through the snapshot path. Only valid between query boundaries, and
// only on a sharded system (Config.Shards > 0).
func (s *System) Rebalance(keys []string, to int) error {
	t, ok := s.engines.(*shardTier)
	if !ok {
		return fmt.Errorf("insight: Rebalance requires Config.Shards > 0")
	}
	return t.RebalanceKeys(keys, to)
}

// ShardCriticalPath returns the accumulated modeled critical path of
// the sharded tier: per boundary, the slowest shard's evaluation time
// plus the reduce stage (shards evaluate in parallel in a deployment,
// the reduce after the slowest of them). 0 on the legacy partitioning.
func (s *System) ShardCriticalPath() time.Duration {
	if t, ok := s.engines.(*shardTier); ok {
		return t.critical
	}
	return 0
}
