// Package eval scores recognised complex events against ground truth.
//
// The paper's evaluation demonstrates feasibility (recognition time,
// estimation convergence, latency) but cannot score *accuracy*: the
// recorded Dublin streams have no ground truth. The synthetic
// substrate does, so this package adds the missing measurement — how
// much the self-adaptive and crowd-validated policies actually improve
// congestion detection over static recognition when sources are
// unreliable.
package eval

import (
	"fmt"
	"sort"

	"github.com/insight-dublin/insight/interval"
)

// Confusion is a binary confusion matrix over sampled time points.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add accumulates another confusion matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// Precision returns TP / (TP + FP); 1 when nothing was predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN); 1 when nothing was there to find.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 1
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Samples returns the number of sampled points.
func (c Confusion) Samples() int { return c.TP + c.FP + c.FN + c.TN }

// String renders the derived metrics.
func (c Confusion) String() string {
	return fmt.Sprintf("precision %.3f, recall %.3f, F1 %.3f, accuracy %.3f (%d samples)",
		c.Precision(), c.Recall(), c.F1(), c.Accuracy(), c.Samples())
}

// Timeline accumulates per-key recognised intervals across query
// times. Windowed recognition reports overlapping views of the same
// fluent; Add unions them so the timeline holds each key's overall
// recognised extent.
type Timeline struct {
	spans map[string]interval.List
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{spans: make(map[string]interval.List)}
}

// Add unions intervals into key's timeline.
func (t *Timeline) Add(key string, l interval.List) {
	if len(l) == 0 {
		return
	}
	t.spans[key] = interval.Union(t.spans[key], l)
}

// Get returns key's accumulated intervals.
func (t *Timeline) Get(key string) interval.List { return t.spans[key] }

// Keys returns the keys with any recognised interval, sorted so
// scoring sweeps visit them in a run-stable order.
func (t *Timeline) Keys() []string {
	out := make([]string, 0, len(t.spans))
	for k := range t.spans {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Score samples the span every step time points for every key and
// compares the predicted timeline against the truth predicate.
func Score(keys []string, predicted func(key string) interval.List, truth func(key string, t interval.Time) bool, span interval.Span, step interval.Time) (Confusion, error) {
	var c Confusion
	if step <= 0 {
		return c, fmt.Errorf("eval: sample step must be positive, got %d", step)
	}
	if span.Empty() {
		return c, fmt.Errorf("eval: empty evaluation span %v", span)
	}
	for _, key := range keys {
		pred := predicted(key)
		for tp := span.Start; tp < span.End; tp += step {
			p := pred.Contains(tp)
			g := truth(key, tp)
			switch {
			case p && g:
				c.TP++
			case p && !g:
				c.FP++
			case !p && g:
				c.FN++
			default:
				c.TN++
			}
		}
	}
	return c, nil
}
