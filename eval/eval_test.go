package eval

import (
	"math"
	"testing"

	"github.com/insight-dublin/insight/interval"
)

func sp(a, b interval.Time) interval.Span { return interval.Span{Start: a, End: b} }

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 4, TN: 86}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Precision = %v, want 0.8", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/12) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.Accuracy(); math.Abs(got-0.94) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.94", got)
	}
	if c.Samples() != 100 {
		t.Errorf("Samples = %d", c.Samples())
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 || c.Accuracy() != 1 {
		t.Error("empty confusion must default to perfect scores")
	}
	if c.F1() != 1 {
		t.Errorf("empty F1 = %v, want 1", c.F1())
	}
	all0 := Confusion{TN: 10}
	if all0.Precision() != 1 || all0.Recall() != 1 {
		t.Error("all-negative confusion should not divide by zero")
	}
	bad := Confusion{FP: 5, FN: 5}
	if bad.F1() != 0 {
		t.Errorf("zero-TP F1 = %v, want 0", bad.F1())
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	a.Add(Confusion{TP: 10, FP: 20, FN: 30, TN: 40})
	if a != (Confusion{TP: 11, FP: 22, FN: 33, TN: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestTimelineUnions(t *testing.T) {
	tl := NewTimeline()
	tl.Add("a", interval.List{sp(0, 10)})
	tl.Add("a", interval.List{sp(5, 20)}) // overlapping view from the next window
	tl.Add("b", interval.List{sp(100, 110)})
	tl.Add("c", nil) // no-op
	if got := tl.Get("a"); !got.Equal(interval.List{sp(0, 20)}) {
		t.Errorf("a = %v", got)
	}
	if got := tl.Get("b"); !got.Equal(interval.List{sp(100, 110)}) {
		t.Errorf("b = %v", got)
	}
	if len(tl.Keys()) != 2 {
		t.Errorf("Keys = %v", tl.Keys())
	}
	if tl.Get("missing") != nil {
		t.Error("missing key must be empty")
	}
}

func TestScore(t *testing.T) {
	// Truth: key "x" congested during [10, 20); prediction covers
	// [15, 25). Sampled at step 1 over [0, 30): TP = 5 (15..19),
	// FP = 5 (20..24), FN = 5 (10..14), TN = 15.
	pred := func(key string) interval.List {
		if key == "x" {
			return interval.List{sp(15, 25)}
		}
		return nil
	}
	truth := func(key string, tm interval.Time) bool {
		return key == "x" && tm >= 10 && tm < 20
	}
	c, err := Score([]string{"x"}, pred, truth, sp(0, 30), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Confusion{TP: 5, FP: 5, FN: 5, TN: 15}
	if c != want {
		t.Errorf("Score = %+v, want %+v", c, want)
	}
}

func TestScoreMultipleKeysAndStep(t *testing.T) {
	pred := func(key string) interval.List {
		if key == "hit" {
			return interval.List{sp(0, 100)}
		}
		return nil
	}
	truth := func(key string, tm interval.Time) bool { return key == "hit" }
	c, err := Score([]string{"hit", "miss"}, pred, truth, sp(0, 100), 10)
	if err != nil {
		t.Fatal(err)
	}
	// 10 samples per key: "hit" all TP, "miss" all TN.
	if c.TP != 10 || c.TN != 10 || c.FP != 0 || c.FN != 0 {
		t.Errorf("Score = %+v", c)
	}
}

func TestScoreValidation(t *testing.T) {
	pred := func(string) interval.List { return nil }
	truth := func(string, interval.Time) bool { return false }
	if _, err := Score(nil, pred, truth, sp(0, 10), 0); err == nil {
		t.Error("zero step must error")
	}
	if _, err := Score(nil, pred, truth, sp(10, 10), 1); err == nil {
		t.Error("empty span must error")
	}
}
