package eval_test

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/eval"
	"github.com/insight-dublin/insight/interval"
)

// Scoring recognised congestion against ground truth: the recognised
// interval lags the true one, producing both misses and false alarms.
func Example() {
	timeline := eval.NewTimeline()
	// Two overlapping window views of the same fluent; Add unions them.
	timeline.Add("int0001", interval.List{{Start: 120, End: 300}})
	timeline.Add("int0001", interval.List{{Start: 250, End: 420}})

	truth := func(key string, t interval.Time) bool {
		return key == "int0001" && t >= 100 && t < 400
	}
	conf, err := eval.Score([]string{"int0001"}, timeline.Get, truth,
		interval.Span{Start: 0, End: 600}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(conf)
	// Output:
	// precision 0.933, recall 0.933, F1 0.933, accuracy 0.933 (60 samples)
}
