// Package geo provides the geographic primitives used throughout the
// INSIGHT Dublin traffic system: WGS-84 points, haversine distances,
// the atemporal `close` predicate of the paper's CE definitions
// (Section 4.3), and bounding boxes for restricting street networks to
// a city window (Section 7.3).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by Distance.
const EarthRadiusMeters = 6371000.0

// Point is a WGS-84 coordinate. The paper's events carry (Lon, Lat)
// pairs; field order here follows Go conventions (Lat first) but the
// constructors accept either.
type Point struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// At builds a Point from latitude and longitude in degrees.
func At(lat, lon float64) Point { return Point{Lat: lat, Lon: lon} }

// LonLat builds a Point from the (Lon, Lat) order used by the paper's
// event attributes, e.g. gps(Bus, Lon, Lat, Direction, Congestion).
func LonLat(lon, lat float64) Point { return Point{Lat: lat, Lon: lon} }

// String renders the point as "(lat, lon)".
func (p Point) String() string { return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon) }

// Valid reports whether the point is within WGS-84 bounds.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Distance returns the haversine great-circle distance in meters
// between two points.
func Distance(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Close is the paper's atemporal close/4 predicate: it computes the
// distance between two points and compares it against a threshold in
// meters. busCongestion and the (dis)agreement rules of Section 4.3
// use it to relate bus positions to SCATS intersections.
func Close(a, b Point, thresholdMeters float64) bool {
	return Distance(a, b) <= thresholdMeters
}

// Box is a latitude/longitude bounding window.
type Box struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box midpoint.
func (b Box) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Expand grows the box by the given margins in degrees.
func (b Box) Expand(dLat, dLon float64) Box {
	return Box{
		MinLat: b.MinLat - dLat, MinLon: b.MinLon - dLon,
		MaxLat: b.MaxLat + dLat, MaxLon: b.MaxLon + dLon,
	}
}

// Dublin is the bounding window of Dublin city used by the synthetic
// street network and data generators (the paper restricts the
// OpenStreetMap network "to a bounding window of the size of the
// city", Section 7.3).
var Dublin = Box{
	MinLat: 53.30, MinLon: -6.40,
	MaxLat: 53.41, MaxLon: -6.15,
}

// Region is one of the four Dublin traffic areas the paper distributes
// CE recognition over: "in Dublin SCATS sensors are placed into the
// intersections of four geographical areas: central city, north city,
// west city and south city" (Section 7.1).
type Region int

// The four Dublin regions.
const (
	Central Region = iota
	North
	West
	South
	NumRegions // number of regions; keep last
)

// String returns the human-readable region name.
func (r Region) String() string {
	switch r {
	case Central:
		return "central"
	case North:
		return "north"
	case West:
		return "west"
	case South:
		return "south"
	}
	return fmt.Sprintf("region(%d)", int(r))
}

// RegionOf partitions the Dublin bounding window into the four areas:
// the central city is the middle of the window; the remainder is split
// into north, south and west by position. Points outside the window
// are assigned to the nearest region.
func RegionOf(p Point) Region {
	c := Dublin.Center()
	// Central: a window of ±0.02° lat, ±0.05° lon around the center.
	if math.Abs(p.Lat-c.Lat) <= 0.02 && math.Abs(p.Lon-c.Lon) <= 0.05 {
		return Central
	}
	if p.Lon < c.Lon-0.05 {
		return West
	}
	if p.Lat >= c.Lat {
		return North
	}
	return South
}
