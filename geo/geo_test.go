package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64 // relative tolerance
	}{
		{"same point", At(53.35, -6.26), At(53.35, -6.26), 0, 0},
		// O'Connell Bridge to Heuston Station, Dublin: ~2.6 km.
		{"dublin cross town", At(53.3472, -6.2592), At(53.3464, -6.2941), 2320, 0.05},
		// One degree of latitude is ~111.2 km everywhere.
		{"one degree lat", At(53, -6), At(54, -6), 111195, 0.01},
		// Equatorial degree of longitude is ~111.3 km.
		{"one degree lon at equator", At(0, 0), At(0, 1), 111195, 0.01},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Distance(c.a, c.b)
			if c.want == 0 {
				if got != 0 {
					t.Errorf("Distance = %f, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-c.want) / c.want; rel > c.tol {
				t.Errorf("Distance = %.0f m, want %.0f m (±%.0f%%)", got, c.want, c.tol*100)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() (Point, Point) {
		return At(r.Float64()*180-90, r.Float64()*360-180),
			At(r.Float64()*180-90, r.Float64()*360-180)
	}
	for i := 0; i < 100; i++ {
		a, b := f()
		d1, d2 := Distance(a, b), Distance(b, a)
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("Distance not symmetric: %v vs %v for %v, %v", d1, d2, a, b)
		}
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	gen := func(r *rand.Rand) Point {
		// Stay away from the poles where the haversine formula's
		// floating point noise dominates.
		return At(r.Float64()*120-60, r.Float64()*360-180)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClose(t *testing.T) {
	intersection := At(53.3498, -6.2603) // the Spire
	busNearby := At(53.3501, -6.2610)    // ~55 m away
	busFar := At(53.3384, -6.2488)       // ~1.5 km away

	if !Close(intersection, busNearby, 100) {
		t.Error("bus 55 m away should be close at 100 m threshold")
	}
	if Close(intersection, busNearby, 10) {
		t.Error("bus 55 m away should not be close at 10 m threshold")
	}
	if Close(intersection, busFar, 100) {
		t.Error("bus 1.5 km away should not be close at 100 m threshold")
	}
	if !Close(intersection, intersection, 0) {
		t.Error("a point is close to itself at any threshold")
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{At(53.35, -6.26), true},
		{At(90, 180), true},
		{At(-90, -180), true},
		{At(91, 0), false},
		{At(0, 181), false},
		{At(math.NaN(), 0), false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLonLatOrder(t *testing.T) {
	p := LonLat(-6.26, 53.35)
	if p.Lat != 53.35 || p.Lon != -6.26 {
		t.Errorf("LonLat mixed up the order: %+v", p)
	}
}

func TestBoxContains(t *testing.T) {
	b := Dublin
	if !b.Contains(At(53.35, -6.26)) {
		t.Error("city center should be inside the Dublin box")
	}
	if b.Contains(At(52.0, -6.26)) {
		t.Error("Wexford is not in Dublin")
	}
	if !b.Contains(b.Center()) {
		t.Error("box must contain its own center")
	}
	if !b.Contains(At(b.MinLat, b.MinLon)) || !b.Contains(At(b.MaxLat, b.MaxLon)) {
		t.Error("box bounds are inclusive")
	}
}

func TestBoxExpand(t *testing.T) {
	b := Box{MinLat: 1, MinLon: 2, MaxLat: 3, MaxLon: 4}.Expand(0.5, 1)
	want := Box{MinLat: 0.5, MinLon: 1, MaxLat: 3.5, MaxLon: 5}
	if b != want {
		t.Errorf("Expand = %+v, want %+v", b, want)
	}
}

func TestRegionOfPartition(t *testing.T) {
	c := Dublin.Center()
	cases := []struct {
		name string
		p    Point
		want Region
	}{
		{"center", c, Central},
		{"north", At(Dublin.MaxLat, c.Lon), North},
		{"south", At(Dublin.MinLat, c.Lon), South},
		{"west", At(c.Lat, Dublin.MinLon), West},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			if got := RegionOf(cse.p); got != cse.want {
				t.Errorf("RegionOf(%v) = %v, want %v", cse.p, got, cse.want)
			}
		})
	}
}

// Every point in the Dublin window must belong to exactly one region,
// and all four regions must be non-empty over a sampling grid.
func TestRegionOfCoversWindow(t *testing.T) {
	counts := make(map[Region]int)
	for lat := Dublin.MinLat; lat <= Dublin.MaxLat; lat += 0.005 {
		for lon := Dublin.MinLon; lon <= Dublin.MaxLon; lon += 0.005 {
			r := RegionOf(At(lat, lon))
			if r < 0 || r >= NumRegions {
				t.Fatalf("RegionOf returned out-of-range region %v", r)
			}
			counts[r]++
		}
	}
	for r := Central; r < NumRegions; r++ {
		if counts[r] == 0 {
			t.Errorf("region %v is empty over the Dublin window", r)
		}
	}
}

func TestRegionString(t *testing.T) {
	names := map[Region]string{Central: "central", North: "north", West: "west", South: "south"}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", int(r), got, want)
		}
	}
	if got := Region(99).String(); got != "region(99)" {
		t.Errorf("unknown region String() = %q", got)
	}
}
