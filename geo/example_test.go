package geo_test

import (
	"fmt"

	"github.com/insight-dublin/insight/geo"
)

// The close/4 predicate of the paper's CE definitions: is a bus near
// enough to a SCATS intersection for its congestion report to count?
func ExampleClose() {
	intersection := geo.At(53.3498, -6.2603) // the Spire
	bus := geo.At(53.3501, -6.2610)

	fmt.Printf("distance: %.0f m\n", geo.Distance(bus, intersection))
	fmt.Println("close at 100 m:", geo.Close(bus, intersection, 100))
	fmt.Println("close at 10 m:", geo.Close(bus, intersection, 10))
	// Output:
	// distance: 57 m
	// close at 100 m: true
	// close at 10 m: false
}

// The four Dublin areas CE recognition is distributed over.
func ExampleRegionOf() {
	fmt.Println(geo.RegionOf(geo.Dublin.Center()))
	fmt.Println(geo.RegionOf(geo.At(53.405, -6.25)))
	// Output:
	// central
	// north
}
