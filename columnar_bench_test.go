package insight

// Benchmarks for the columnar event path: the same ingest → recognition
// workload through per-item map transport and through typed columnar
// blocks. `make bench-rtec` captures BenchmarkIngest alongside the
// Figure 4 sweep; `make bench-delay` captures BenchmarkDelayedIngest
// (the WM > step delayed-arrival regime of Figure 2). The alloc-budget
// test at the bottom is the regression gate `make check` runs against
// the committed per-event allocation budget.

import (
	"testing"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

func benchDefs(b *testing.B, city *dublin.City, adaptive bool) *rtec.Definitions {
	b.Helper()
	reg, err := city.Registry(150)
	if err != nil {
		b.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		b.Fatal(err)
	}
	return defs
}

func benchPartitioned(b *testing.B, defs *rtec.Definitions, wm, step rtec.Time) *rtec.Partitioned {
	b.Helper()
	return benchPartitionedOpts(b, defs, rtec.Options{WorkingMemory: wm, Step: step})
}

func benchPartitionedOpts(b *testing.B, defs *rtec.Definitions, opts rtec.Options) *rtec.Partitioned {
	b.Helper()
	part, err := rtec.NewPartitioned(defs, opts,
		4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
	if err != nil {
		b.Fatal(err)
	}
	part.SetBlockAssign(dublin.PartitionOfBlock)
	return part
}

// BenchmarkIngest measures the ingest phase of one working-memory
// window — the same delivered SDE batches entering the RTEC store
// through the captured map path (decode every row into a map-backed
// event, feed it per item) and through the columnar path (append the
// column blocks directly). The recognition query still runs every
// iteration (outside the timer, as in runFig4) so the store sees the
// full ingest→recognition cycle; its work is identical on both sides
// by construction (TestColumnarPipeline* pins the CE output
// bit-identical). events/s and allocs/op here are the headline numbers
// of the columnar PR (see EXPERIMENTS.md); city942 is the paper's full
// scale.
func BenchmarkIngest(b *testing.B) {
	const wm = rtec.Time(30 * 60)
	from := rtec.Time(7 * 3600)

	for _, scale := range []struct {
		name           string
		buses, sensors int
	}{
		{"city118", 118, 121},
		{"city942", 942, 966},
	} {
		city, err := dublin.NewCity(dublin.Config{Seed: 1, NumBuses: scale.buses, NumSensors: scale.sensors})
		if err != nil {
			b.Fatal(err)
		}
		defs := benchDefs(b, city, false)
		bstreams := city.CollectBatches(from, from+wm, 512, 0)
		n := 0
		var batches []*streams.Batch
		var blocks []*rtec.Block
		for _, bs := range bstreams {
			for _, batch := range bs.Batches {
				batches = append(batches, batch)
				blocks = append(blocks, dublin.Block(batch))
				n += batch.Len()
			}
		}
		b.Cleanup(func() {
			for _, batch := range batches {
				batch.Release()
			}
		})

		b.Run(scale.name+"/map", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				part := benchPartitioned(b, defs, wm, wm)
				b.StartTimer()
				for _, batch := range batches {
					rows := batch.Len()
					for r := 0; r < rows; r++ {
						attrs := make(map[string]any, len(batch.Cols))
						for ci := range batch.Cols {
							c := &batch.Cols[ci]
							attrs[c.Name] = c.Value(r)
						}
						ev := rtec.NewEvent(batch.Type, rtec.Time(batch.Times[r]), batch.Keys[r], attrs)
						if err := part.Input(ev); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				if _, err := part.Query(from + wm); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(n), "events")
		})

		b.Run(scale.name+"/columnar", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				part := benchPartitioned(b, defs, wm, wm)
				b.StartTimer()
				for _, blk := range blocks {
					if err := part.InputBlock(blk); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if _, err := part.Query(from + wm); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(n), "events")
		})
	}
}

// BenchmarkSustainedIngest measures steady-state ingest throughput at
// the paper's full scale: one engine set runs across all iterations,
// each pass feeds the next working-memory window (the shared batches
// are time-shifted forward between passes) and the recognition query
// runs after every pass (outside the timer) so eviction keeps the
// store at its steady working set. Unlike BenchmarkIngest's cold-store
// window, the numbers here exclude the one-time slice-growth transient
// a continuously-running pipeline never repays. Map side decodes every
// row into a map-backed event first — the representation cost the
// columnar path removes.
func BenchmarkSustainedIngest(b *testing.B) {
	const wm = rtec.Time(30 * 60)
	from := rtec.Time(7 * 3600)
	city, err := dublin.NewCity(dublin.Config{Seed: 1, NumBuses: 942, NumSensors: 966})
	if err != nil {
		b.Fatal(err)
	}
	defs := benchDefs(b, city, false)
	bstreams := city.CollectBatches(from, from+wm, 512, 0)
	n := 0
	var batches []*streams.Batch
	var blocks []*rtec.Block
	for _, bs := range bstreams {
		for _, batch := range bs.Batches {
			batches = append(batches, batch)
			blocks = append(blocks, dublin.Block(batch))
			n += batch.Len()
		}
	}
	b.Cleanup(func() {
		for _, batch := range batches {
			batch.Release()
		}
	})
	// shift is the total time offset applied to the shared batches (the
	// blocks alias their slices, so both views advance together). Each
	// pass feeds [from+shift, from+shift+wm) and then moves the data one
	// window forward, so the store always ingests strictly new time — the
	// regime the sorted-merge fast paths are built for — and eviction
	// bounds memory at any -benchtime.
	var shift rtec.Time
	shiftBatches := func(d rtec.Time) {
		for _, batch := range batches {
			for i := range batch.Times {
				batch.Times[i] += int64(d)
			}
		}
		shift += d
	}

	feedMap := func(b *testing.B, part *rtec.Partitioned) {
		for _, batch := range batches {
			rows := batch.Len()
			for r := 0; r < rows; r++ {
				attrs := make(map[string]any, len(batch.Cols))
				for ci := range batch.Cols {
					c := &batch.Cols[ci]
					attrs[c.Name] = c.Value(r)
				}
				ev := rtec.NewEvent(batch.Type, rtec.Time(batch.Times[r]), batch.Keys[r], attrs)
				if err := part.Input(ev); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	feedColumnar := func(b *testing.B, part *rtec.Partitioned) {
		for _, blk := range blocks {
			if err := part.InputBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	}

	for _, mode := range []struct {
		name  string
		feed  func(*testing.B, *rtec.Partitioned)
		store rtec.StoreKind
	}{
		{"map", feedMap, rtec.StoreRow},
		{"columnar", feedColumnar, rtec.StoreRow},
		{"columnar-colstore", feedColumnar, rtec.StoreColumn},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Profile turns on the resident-store accounting (recorded
			// outside the timer, at the per-window queries).
			part := benchPartitionedOpts(b, defs, rtec.Options{
				WorkingMemory: wm, Step: wm, Store: mode.store, Profile: true,
			})
			// Warm-up pass: store and pool slices reach their
			// steady-state capacities before the timer starts.
			mode.feed(b, part)
			if _, err := part.Query(from + shift + wm); err != nil {
				b.Fatal(err)
			}
			shiftBatches(wm)
			var resident uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mode.feed(b, part)
				b.StopTimer()
				results, err := part.Query(from + shift + wm)
				if err != nil {
					b.Fatal(err)
				}
				resident = rtec.MergeResults(results).Stats.ResidentBytes
				shiftBatches(wm)
				b.StartTimer()
			}
			b.ReportMetric(float64(n), "events")
			b.ReportMetric(float64(resident)/float64(n), "res-B/event")
		})
	}
}

// residentAtSteadyState runs the sustained-ingest workload for a few
// windows on one store kind and returns the resident store bytes the
// last query reported, plus the per-window event count.
func residentAtSteadyState(t *testing.T, kind rtec.StoreKind) (uint64, int) {
	t.Helper()
	const wm = rtec.Time(30 * 60)
	from := rtec.Time(7 * 3600)
	city, err := dublin.NewCity(dublin.Config{Seed: 1, NumBuses: 118, NumSensors: 121})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := city.Registry(150)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{Registry: reg, NoisyPolicy: traffic.Pessimistic})
	if err != nil {
		t.Fatal(err)
	}
	bstreams := city.CollectBatches(from, from+wm, 512, 0)
	n := 0
	var batches []*streams.Batch
	var blocks []*rtec.Block
	for _, bs := range bstreams {
		for _, batch := range bs.Batches {
			batches = append(batches, batch)
			blocks = append(blocks, dublin.Block(batch))
			n += batch.Len()
		}
	}
	defer func() {
		for _, batch := range batches {
			batch.Release()
		}
	}()
	part, err := rtec.NewPartitioned(defs, rtec.Options{
		WorkingMemory: wm, Step: wm, Store: kind, Profile: true,
	}, 4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
	if err != nil {
		t.Fatal(err)
	}
	part.SetBlockAssign(dublin.PartitionOfBlock)
	var resident uint64
	shift := rtec.Time(0)
	for pass := 0; pass < 3; pass++ {
		for _, blk := range blocks {
			if err := part.InputBlock(blk); err != nil {
				t.Fatal(err)
			}
		}
		results, err := part.Query(from + shift + wm)
		if err != nil {
			t.Fatal(err)
		}
		resident = rtec.MergeResults(results).Stats.ResidentBytes
		for _, batch := range batches {
			for i := range batch.Times {
				batch.Times[i] += int64(wm)
			}
		}
		shift += wm
	}
	return resident, n
}

// TestResidentBudget is the resident-memory gate of the columnar
// store: at ingest steady state (eviction active, identical workload)
// the column-resident store must hold at least 1.5× fewer estimated
// resident bytes per event than the row store.
func TestResidentBudget(t *testing.T) {
	rowBytes, n := residentAtSteadyState(t, rtec.StoreRow)
	colBytes, _ := residentAtSteadyState(t, rtec.StoreColumn)
	if rowBytes == 0 || colBytes == 0 {
		t.Fatalf("resident accounting inert: row=%d column=%d", rowBytes, colBytes)
	}
	t.Logf("resident store bytes at steady state: row=%d (%.1f B/event), column=%d (%.1f B/event), ratio=%.2fx",
		rowBytes, float64(rowBytes)/float64(n), colBytes, float64(colBytes)/float64(n),
		float64(rowBytes)/float64(colBytes))
	// colBytes*3 <= rowBytes*2  <=>  rowBytes/colBytes >= 1.5
	if colBytes*3 > rowBytes*2 {
		t.Errorf("column store resident bytes = %d, want at least 1.5x below row store's %d",
			colBytes, rowBytes)
	}
}

// blockCursor walks the arrival-ordered rows of one batched stream for
// sliding-window delivery.
type blockCursor struct {
	blocks []*rtec.Block
	bi, ri int
	rows   []int32
}

// feedUntil delivers every remaining row with arrival <= q to the
// engines, using one InputBlockRows call per touched block.
func (c *blockCursor) feedUntil(b *testing.B, part *rtec.Partitioned, arrivals [][]int64, q rtec.Time) int {
	b.Helper()
	fed := 0
	for c.bi < len(c.blocks) {
		blk := c.blocks[c.bi]
		arr := arrivals[c.bi]
		c.rows = c.rows[:0]
		for c.ri < blk.Len() && rtec.Time(arr[c.ri]) <= q {
			c.rows = append(c.rows, int32(c.ri))
			c.ri++
		}
		if len(c.rows) > 0 {
			if err := part.InputBlockRows(blk, c.rows); err != nil {
				b.Fatal(err)
			}
			fed += len(c.rows)
		}
		if c.ri < blk.Len() {
			return fed // head of this block is beyond q
		}
		c.bi++
		c.ri = 0
	}
	return fed
}

// BenchmarkDelayedIngest measures the Figure 2 regime (WM = 2×step
// with mediator delays, a query every step over one monitored hour):
// map vs columnar delivery of exactly the SDEs that have arrived by
// each boundary.
func BenchmarkDelayedIngest(b *testing.B) {
	const step = rtec.Time(5 * 60)
	const wm = 2 * step
	from := rtec.Time(7 * 3600)
	until := from + 3600

	mkCity := func(b *testing.B) *dublin.City {
		city, err := dublin.NewCity(dublin.Config{
			Seed:       1,
			NumBuses:   118,
			NumSensors: 121,
			MaxDelay:   120,
		})
		if err != nil {
			b.Fatal(err)
		}
		return city
	}

	b.Run("map", func(b *testing.B) {
		city := mkCity(b)
		defs := benchDefs(b, city, false)
		sdes := city.Collect(from, until)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			part := benchPartitioned(b, defs, wm, step)
			b.StartTimer()
			cursor := 0
			for q := from + step; q <= until; q += step {
				for cursor < len(sdes) && sdes[cursor].Arrival <= q {
					if err := part.Input(sdes[cursor].Event); err != nil {
						b.Fatal(err)
					}
					cursor++
				}
				b.StopTimer()
				if _, err := part.Query(q); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
		b.ReportMetric(float64(len(sdes)), "events")
	})

	b.Run("columnar", func(b *testing.B) {
		city := mkCity(b)
		defs := benchDefs(b, city, false)
		bstreams := city.CollectBatches(from, until, 512, 0)
		n := 0
		var perStream [][]*rtec.Block
		var perArr [][][]int64
		for _, bs := range bstreams {
			var blocks []*rtec.Block
			var arrs [][]int64
			for _, batch := range bs.Batches {
				blocks = append(blocks, dublin.Block(batch))
				arrs = append(arrs, batch.Arrivals)
				n += batch.Len()
			}
			perStream = append(perStream, blocks)
			perArr = append(perArr, arrs)
		}
		b.Cleanup(func() {
			for _, bs := range bstreams {
				for _, batch := range bs.Batches {
					batch.Release()
				}
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			part := benchPartitioned(b, defs, wm, step)
			cursors := make([]blockCursor, len(perStream))
			for si := range perStream {
				cursors[si] = blockCursor{blocks: perStream[si]}
			}
			b.StartTimer()
			for q := from + step; q <= until; q += step {
				for si := range cursors {
					cursors[si].feedUntil(b, part, perArr[si], q)
				}
				b.StopTimer()
				if _, err := part.Query(q); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
		b.ReportMetric(float64(n), "events")
	})
}

// allocBudgetPerEvent is the committed ingest allocation budget the
// check target gates on: the columnar path must stay under this many
// heap allocations per event on the block-ingest path (engine-side row
// copy + store insertion). The map path sits around 10 allocs/event
// (attribute map, boxed values, Event record); the columnar path's
// per-block slice copies amortize to well under one. Measured at
// ~0.11 on the seed hardware; 0.25 leaves headroom for allocator and
// map-growth jitter without letting a per-row allocation (≥1.0) slip
// through.
const allocBudgetPerEvent = 0.25

// TestAllocBudget_ColumnarIngest is the allocation-regression gate: it
// measures allocations per event on the columnar ingest path and fails
// when the committed budget is exceeded. Skipped under the race
// detector, whose instrumentation allocates.
func TestAllocBudget_ColumnarIngest(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	city, err := dublin.NewCity(dublin.Config{Seed: 1, NumBuses: 118, NumSensors: 121})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := city.Registry(150)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{Registry: reg, NoisyPolicy: traffic.Pessimistic})
	if err != nil {
		t.Fatal(err)
	}
	from := rtec.Time(7 * 3600)
	bstreams := city.CollectBatches(from, from+1800, 512, 0)
	var blocks []*rtec.Block
	events := 0
	for _, bs := range bstreams {
		for _, batch := range bs.Batches {
			blocks = append(blocks, dublin.Block(batch))
			events += batch.Len()
		}
	}
	defer func() {
		for _, bs := range bstreams {
			for _, batch := range bs.Batches {
				batch.Release()
			}
		}
	}()
	part, err := rtec.NewPartitioned(defs, rtec.Options{WorkingMemory: 1800, Step: 1800},
		4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
	if err != nil {
		t.Fatal(err)
	}
	// Route at block level, as the production pipeline does.
	part.SetBlockAssign(dublin.PartitionOfBlock)
	// Warm up once so the store's per-key slices exist; the measured
	// passes then see the steady-state path.
	for _, blk := range blocks {
		if err := part.InputBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, blk := range blocks {
			if err := part.InputBlock(blk); err != nil {
				t.Fatal(err)
			}
		}
	})
	perEvent := allocs / float64(events)
	t.Logf("columnar ingest: %.0f allocs per pass, %.3f per event (%d events, budget %.2f)",
		allocs, perEvent, events, allocBudgetPerEvent)
	if perEvent > allocBudgetPerEvent {
		t.Errorf("columnar ingest allocates %.3f per event, budget %.2f — the zero-allocation path regressed",
			perEvent, allocBudgetPerEvent)
	}
}
