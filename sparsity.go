package insight

import (
	"fmt"
	"sort"

	"github.com/insight-dublin/insight/gp"
)

// sortedKeys returns the keys of m in ascending order, for
// deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FlowEstimate is the city-wide traffic picture of Figure 9: the GP
// predictive mean at every street junction, with the junctions that
// actually carry sensors listed separately.
type FlowEstimate struct {
	// Values has one flow estimate per graph vertex.
	Values []float64
	// ObservedVertices are the junctions with at least one recent
	// sensor reading.
	ObservedVertices []int
	// Observations is the number of sensor readings used.
	Observations int
}

// MapConfig parameterizes FlowMap.
type MapConfig struct {
	// Alpha, Beta are the regularized-Laplacian hyperparameters.
	Alpha, Beta float64
	// SensorNoise is the observation noise variance σ² for SCATS
	// readings, in (veh/h)².
	SensorNoise float64
	// CrowdNoise, when positive, includes the latest crowdsourcing
	// verdicts as congestion pseudo-readings with this (larger)
	// variance — the paper's suggestion that "the traffic modelling
	// component may also use the crowdsourced information to resolve
	// data sparsity" (Section 1).
	CrowdNoise float64
}

// Flow pseudo-values assigned to crowd congestion verdicts, matching
// the synthetic city's flow calibration (congested branch ≈ 250 veh/h,
// free flow ≈ 1250 veh/h).
const (
	crowdCongestedFlow = 250
	crowdFreeFlow      = 1250
)

// SparsityMap runs the traffic modelling component on the SCATS
// readings only. See FlowMap for the crowdsourcing-augmented variant.
func (s *System) SparsityMap(alpha, beta, noiseVar float64) (*FlowEstimate, error) {
	return s.FlowMap(MapConfig{Alpha: alpha, Beta: beta, SensorNoise: noiseVar})
}

// FlowMap runs the traffic modelling component: the most recent
// reading of every SCATS sensor (aggregated per junction) — and,
// optionally, the latest crowd verdicts as noisier pseudo-readings —
// conditions a GP with the regularized Laplacian kernel, and the
// predictive mean is evaluated at every junction of the street
// network, including the large parts of the city with no sensors at
// all. Kernels are cached per (α, β).
func (s *System) FlowMap(cfg MapConfig) (*FlowEstimate, error) {
	if len(s.lastTraffic) == 0 {
		return nil, fmt.Errorf("insight: no sensor readings ingested yet")
	}
	key := [2]float64{cfg.Alpha, cfg.Beta}
	kernel, ok := s.kernels[key]
	if !ok {
		var err error
		kernel, err = gp.RegularizedLaplacian(s.city.Graph(), cfg.Alpha, cfg.Beta)
		if err != nil {
			return nil, err
		}
		s.kernels[key] = kernel
	}
	// Observations are assembled in sorted-key order: gp.Fit averages
	// duplicate vertices with float accumulation, so the observation
	// order must be run-stable for the flow estimates to be
	// bit-identical across runs.
	obs := make([]gp.Observation, 0, len(s.lastTraffic)+len(s.lastCrowd))
	for _, sensor := range sortedKeys(s.lastTraffic) {
		r := s.lastTraffic[sensor]
		obs = append(obs, gp.Observation{Vertex: r.vertex, Value: r.flow})
	}
	if cfg.CrowdNoise > 0 {
		for _, inter := range sortedKeys(s.lastCrowd) {
			c := s.lastCrowd[inter]
			value := float64(crowdFreeFlow)
			if c.congested {
				value = crowdCongestedFlow
			}
			obs = append(obs, gp.Observation{Vertex: c.vertex, Value: value, Noise: cfg.CrowdNoise})
		}
	}
	reg, err := gp.Fit(kernel, obs, cfg.SensorNoise)
	if err != nil {
		return nil, err
	}
	values, err := reg.PredictAll()
	if err != nil {
		return nil, err
	}
	return &FlowEstimate{
		Values:           values,
		ObservedVertices: reg.Observed(),
		Observations:     len(obs),
	}, nil
}
