package insight

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// ceFingerprint renders every recognition-derived field of a report as
// one canonical string: if two runs produce the same fingerprints they
// recognised the same complex events. Transport-timing fields
// (WatermarkLag, DegradedStreams) are deliberately excluded — they
// describe when boundaries fired, not what was recognised, and depend
// on goroutine interleaving.
func ceFingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q=%d window=[%d,%d) fed=%d input=%d\n",
		rep.Q, rep.Window.Start, rep.Window.End, rep.FedEvents, rep.Stats.InputEvents)
	fmt.Fprintf(&b, "congested=%s\n", join(rep.CongestedIntersections))
	fmt.Fprintf(&b, "busAreas=%s\n", join(rep.BusCongestionAreas))
	fmt.Fprintf(&b, "disagree=%s\n", join(rep.Disagreements))
	fmt.Fprintf(&b, "warnings=%s\n", join(rep.CongestionWarnings))
	fmt.Fprintf(&b, "unusual=%s\n", join(rep.UnusualCongestion))
	fmt.Fprintf(&b, "noisy=%s\n", join(rep.NoisyBuses))
	for _, a := range rep.Alerts {
		fmt.Fprintf(&b, "alert %s|%s|%d|%s\n", a.Kind, a.Key, a.Time, a.Text)
	}
	for _, c := range rep.CrowdRounds {
		fmt.Fprintf(&b, "crowd %s|%d|%s\n", c.Intersection, c.Queried, c.Verdict.Best)
	}
	if rep.Result != nil {
		types := make([]string, 0, len(rep.Result.Derived))
		for typ := range rep.Result.Derived {
			types = append(types, typ)
		}
		sort.Strings(types)
		for _, typ := range types {
			for _, ev := range rep.Result.Derived[typ] {
				fmt.Fprintf(&b, "derived %s|%s|%d\n", ev.Type, ev.Key, ev.Time)
			}
		}
		for _, ev := range rep.Result.Fresh {
			fmt.Fprintf(&b, "fresh %s|%s|%d\n", ev.Type, ev.Key, ev.Time)
		}
	}
	return b.String()
}

func compareReports(t *testing.T, label string, got, want []*Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range got {
		gf, wf := ceFingerprint(got[i]), ceFingerprint(want[i])
		if gf != wf {
			t.Errorf("%s: report %d differs:\n--- columnar ---\n%s--- map ---\n%s", label, i, gf, wf)
		}
	}
}

// TestColumnarPipelineMatchesMapPipeline is the tentpole equivalence
// check: the same city through per-item map transport and through
// columnar batched transport must recognise bit-identical complex
// events — crowdsourcing feedback loop included — and the columnar run
// must return every transport buffer to the pool.
func TestColumnarPipelineMatchesMapPipeline(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600

	mkSystem := func(columnar bool) *System {
		city := testCity(t)
		sys, err := New(Config{
			City:              city,
			Seed:              7,
			WorkingMemory:     1800,
			Step:              900,
			Participants:      testParticipants(city, 8),
			ColumnarTransport: columnar,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	run := func(columnar bool) []*Report {
		pipe, err := mkSystem(columnar).BuildPipeline(from, until)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := pipe.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}

	mapReports := run(false)
	if len(mapReports) == 0 {
		t.Fatal("map-transport run produced no reports")
	}
	before := streams.LiveBatches()
	colReports := run(true)
	if live := streams.LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d: columnar run leaked transport buffers", live, before)
	}
	compareReports(t, "columnar vs map", colReports, mapReports)
}

// TestColumnarChaosDropDupMatchesMap runs the full chaos pipeline with
// row-level drops and duplicates on every input stream, map vs
// columnar transport. The injectors consume identical rng sequences in
// both modes, so the faulted streams — and with them the recognition
// output — must match exactly.
func TestColumnarChaosDropDupMatchesMap(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600

	chaos := ChaosConfig{Streams: map[string]streams.FaultSpec{}}
	ids := []string{"bus", "scats-central", "scats-north", "scats-west", "scats-south"}
	for i, id := range ids {
		chaos.Streams[id] = streams.FaultSpec{
			Seed:     100 + int64(i)*7,
			DropProb: 0.05,
			DupProb:  0.05,
		}
	}

	run := func(columnar bool) ([]*Report, int, int) {
		sys, err := New(Config{
			City:              testCity(t),
			Seed:              7,
			WorkingMemory:     1800,
			Step:              900,
			ColumnarTransport: columnar,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := sys.BuildChaosPipeline(from, until, chaos)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := pipe.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		dropped, duplicated := 0, 0
		for _, cs := range pipe.Chaos {
			st := cs.Stats()
			dropped += st.Dropped
			duplicated += st.Duplicated
		}
		return reports, dropped, duplicated
	}

	mapReports, mapDrops, mapDups := run(false)
	if mapDrops == 0 || mapDups == 0 {
		t.Fatalf("map run injected %d drops, %d dups: fault injection inert", mapDrops, mapDups)
	}
	before := streams.LiveBatches()
	colReports, colDrops, colDups := run(true)
	if live := streams.LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d: faulted columnar run leaked buffers", live, before)
	}
	if colDrops != mapDrops || colDups != mapDups {
		t.Errorf("columnar faults (%d drops, %d dups) != map faults (%d drops, %d dups)",
			colDrops, colDups, mapDrops, mapDups)
	}
	compareReports(t, "chaos columnar vs map", colReports, mapReports)
}

// rowEvent materializes row i of a transport batch as a map-backed
// rtec event — the per-item representation of the same SDE.
func rowEvent(b *streams.Batch, i int) rtec.Event {
	attrs := make(map[string]any, len(b.Cols))
	for ci := range b.Cols {
		c := &b.Cols[ci]
		attrs[c.Name] = c.Value(i)
	}
	return rtec.NewEvent(b.Type, Time(b.Times[i]), b.Keys[i], attrs)
}

// mkRtecProcessor builds the monitoring processor the way
// buildPipeline does, over a fresh crowdless system.
func mkRtecProcessor(t *testing.T, from, until Time, ids []string) *rtecProcessor {
	t.Helper()
	sys, err := New(Config{
		City:          testCity(t),
		Seed:          7,
		WorkingMemory: 1800,
		Step:          900,
		Traffic: traffic.Config{
			NoisyPolicy: traffic.Pessimistic,
			Adaptive:    true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &rtecProcessor{
		system:     sys,
		step:       sys.cfg.Step,
		nextQ:      from + sys.cfg.Step,
		until:      until,
		watermarks: make(map[string]Time, len(ids)),
		degraded:   make(map[string]bool),
	}
	for _, id := range ids {
		p.watermarks[id] = from
	}
	return p
}

// TestColumnarChaosDelayRoundTrip is the reordering half of the chaos
// contract: a seeded fault mix including out-of-order re-delivery over
// batched transport must yield CE output identical to feeding the very
// same faulted rows one map-backed event at a time. Both sides consume
// the same faulted batch sequence through a deterministic
// single-threaded merge, so the comparison is exact — and the pooled
// buffers must all be back after the run (no aliasing after release).
func TestColumnarChaosDelayRoundTrip(t *testing.T) {
	const from, until = Time(7 * 3600), Time(8 * 3600)
	const step = Time(900)

	before := streams.LiveBatches()
	city := testCity(t)
	bstreams := city.CollectBatches(from, until, 512, step/2)
	ids := make([]string, 0, len(bstreams))

	// One seeded injector per stream: drops, duplicates and held-back
	// rows re-delivered out of order.
	type cursor struct {
		id   string
		src  *streams.ChaosSource
		next *streams.Batch
		done bool
	}
	cursors := make([]*cursor, 0, len(bstreams))
	for i, bs := range bstreams {
		ids = append(ids, bs.ID)
		items := make([]streams.Item, 0, len(bs.Batches))
		for _, b := range bs.Batches {
			items = append(items, streams.BatchItem(b))
		}
		cursors = append(cursors, &cursor{
			id: bs.ID,
			src: streams.NewChaosSource(streams.NewSliceSource(items...), streams.FaultSpec{
				Seed:      500 + int64(i)*13,
				DropProb:  0.03,
				DupProb:   0.03,
				DelayProb: 0.08,
				DelayMax:  4,
			}),
		})
	}
	advance := func(c *cursor) {
		it, ok := c.src.Read()
		if !ok {
			c.next, c.done = nil, true
			return
		}
		b, isBatch := streams.ItemBatch(it)
		if !isBatch {
			t.Fatalf("stream %s: injector emitted a non-batch item", c.id)
		}
		c.next = b
	}
	for _, c := range cursors {
		advance(c)
	}

	colProc := mkRtecProcessor(t, from, until, ids)
	itemProc := mkRtecProcessor(t, from, until, ids)
	var colReports, itemReports []*Report
	collect := func(dst *[]*Report, items []streams.Item) {
		for _, it := range items {
			rep, ok := it[itemReport].(*Report)
			if !ok {
				t.Fatalf("monitoring emitted a non-report item %v", it)
			}
			*dst = append(*dst, rep)
		}
	}

	// Deterministic merge: always consume the batch with the smallest
	// head arrival (ties by stream order) — one fixed interleaving both
	// sides see.
	faulted := 0
	for {
		pick := -1
		for i, c := range cursors {
			if c.done {
				continue
			}
			if pick < 0 || c.next.Arrivals[0] < cursors[pick].next.Arrivals[0] {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		c := cursors[pick]
		b := c.next
		faulted += b.Len()

		// Side B first: materialize the rows as per-item SDEs before
		// side A consumes (and eventually releases) the batch.
		for i := 0; i < b.Len(); i++ {
			out, err := itemProc.Process(streams.Item{
				itemEvent:   rowEvent(b, i),
				itemArrival: b.Arrivals[i],
				itemSource:  c.id,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				collect(&itemReports, []streams.Item{out})
			}
		}
		// Side A: the same batch through the native columnar path.
		outs, err := colProc.ProcessBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		collect(&colReports, outs)
		advance(c)
	}
	if faulted == 0 {
		t.Fatal("no rows survived fault injection")
	}
	delayed := 0
	for _, c := range cursors {
		delayed += c.src.Stats().Delayed
	}
	if delayed == 0 {
		t.Fatal("no rows were re-ordered: delay injection inert")
	}

	colFlush, err := colProc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	collect(&colReports, colFlush)
	itemFlush, err := itemProc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	collect(&itemReports, itemFlush)

	if len(colReports) == 0 {
		t.Fatal("no reports produced")
	}
	compareReports(t, "delay chaos columnar vs per-item", colReports, itemReports)
	if live := streams.LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d: delayed buffers not returned to the pool", live, before)
	}
}
