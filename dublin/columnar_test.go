package dublin

import (
	"testing"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// streamOf maps a materialized SDE to its input stream id, the same
// way CollectBatches splits the stream set.
func streamOf(sde SDE) string {
	if sde.Event.Type == traffic.MoveType {
		return "bus"
	}
	lon, _ := sde.Event.Float("lon")
	lat, _ := sde.Event.Float("lat")
	return "scats-" + geo.RegionOf(geo.Point{Lon: lon, Lat: lat}).String()
}

// TestCollectBatchesMatchesCollect demands row-for-row bit identity
// between the batched and the per-item emission: same events, same
// attributes, same per-stream arrival order.
func TestCollectBatchesMatchesCollect(t *testing.T) {
	city := mustCity(t, smallConfig())
	items := city.Collect(0, 1800)
	want := map[string][]SDE{}
	for _, sde := range items {
		id := streamOf(sde)
		want[id] = append(want[id], sde)
	}

	before := streams.LiveBatches()
	bstreams := mustCity(t, smallConfig()).CollectBatches(0, 1800, 64, 0)
	got := 0
	for _, bs := range bstreams {
		ref := want[bs.ID]
		ri := 0
		for _, b := range bs.Batches {
			if err := b.Check(); err != nil {
				t.Fatalf("stream %s: %v", bs.ID, err)
			}
			if b.Len() > 64 {
				t.Fatalf("stream %s: batch of %d rows exceeds maxRows", bs.ID, b.Len())
			}
			blk := Block(b)
			for i := 0; i < b.Len(); i++ {
				if ri >= len(ref) {
					t.Fatalf("stream %s: more rows than per-item events", bs.ID)
				}
				sde := ref[ri]
				ev := blk.Event(i)
				if ev.Type != sde.Event.Type || ev.Time != sde.Event.Time || ev.Key != sde.Event.Key {
					t.Fatalf("stream %s row %d: %v, want %v", bs.ID, ri, ev, sde.Event)
				}
				if arr := b.Arrivals[i]; arr != int64(sde.Arrival) {
					t.Fatalf("stream %s row %d: arrival %d, want %d", bs.ID, ri, arr, sde.Arrival)
				}
				for name := range sde.Event.Attrs {
					gv, gok := ev.Get(name)
					wv, wok := sde.Event.Get(name)
					if gv != wv || gok != wok {
						t.Fatalf("stream %s row %d attr %s: (%v, %v), want (%v, %v)",
							bs.ID, ri, name, gv, gok, wv, wok)
					}
				}
				if len(b.Cols) != len(sde.Event.Attrs) {
					t.Fatalf("stream %s row %d: %d columns, want %d attrs",
						bs.ID, ri, len(b.Cols), len(sde.Event.Attrs))
				}
				ri++
				got++
			}
		}
		if ri != len(ref) {
			t.Fatalf("stream %s: %d rows, want %d", bs.ID, ri, len(ref))
		}
	}
	if got != len(items) {
		t.Fatalf("total rows %d, want %d", got, len(items))
	}
	for _, bs := range bstreams {
		for _, b := range bs.Batches {
			b.Release()
		}
	}
	if live := streams.LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d", live, before)
	}
}

// TestCollectBatchesSpanCut checks the arrival-span cap: no batch may
// cover more arrival time than maxSpan, so watermark punctuation stays
// fine-grained under batching.
func TestCollectBatchesSpanCut(t *testing.T) {
	city := mustCity(t, smallConfig())
	const span = 120
	for _, bs := range city.CollectBatches(0, 1800, 0, span) {
		for _, b := range bs.Batches {
			if n := b.Len(); n > 0 {
				if got := b.Arrivals[n-1] - b.Arrivals[0]; got > span {
					t.Errorf("stream %s: batch spans %d arrival seconds, cap %d", bs.ID, got, span)
				}
			}
			b.Release()
		}
	}
}
