package dublin

import (
	"container/heap"
	"math/rand"
	"sort"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// SDE is one simple derived event of the synthetic stream, with its
// mediator-assigned arrival time. Occurrence (Event.Time) and Arrival
// differ because "sensor data may go through multiple mediators en
// route" (Section 1); the RTEC window/step machinery exists to absorb
// exactly this gap.
type SDE struct {
	Event   rtec.Event
	Arrival rtec.Time
}

// Generator streams the city's SDEs over a time range in occurrence
// order. It is deterministic for a given city and range.
type Generator struct {
	city  *City
	until rtec.Time
	queue emitterHeap
	rng   *rand.Rand

	// per-bus delay state for the delay attribute
	busDelay []float64
}

type emitter struct {
	next  rtec.Time
	kind  int // 0 = bus, 1 = sensor
	index int
}

type emitterHeap []emitter

func (h emitterHeap) Len() int           { return len(h) }
func (h emitterHeap) Less(i, j int) bool { return h[i].next < h[j].next }
func (h emitterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *emitterHeap) Push(x any)        { *h = append(*h, x.(emitter)) }
func (h *emitterHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Stream creates a generator for SDEs occurring in [from, until).
func (c *City) Stream(from, until rtec.Time) *Generator {
	g := &Generator{
		city:     c,
		until:    until,
		rng:      rand.New(rand.NewSource(c.cfg.Seed + 7)),
		busDelay: make([]float64, len(c.buses)),
	}
	// Stagger first emissions deterministically.
	for i := range c.buses {
		period := int64(c.cfg.BusPeriodMax)
		g.queue = append(g.queue, emitter{
			next:  from + rtec.Time(g.rng.Int63n(period)),
			kind:  0,
			index: i,
		})
	}
	for i := range c.sensors {
		g.queue = append(g.queue, emitter{
			next:  from + rtec.Time(g.rng.Int63n(int64(c.cfg.ScatsPeriod))),
			kind:  1,
			index: i,
		})
	}
	heap.Init(&g.queue)
	return g
}

// rawSDE is one synthesized event before materialization: the typed
// fields a columnar batch appends directly, without building an
// attribute map. kind 0 carries the bus fields, kind 1 the sensor
// fields; static attributes (route/line labels, sensor identifiers)
// are looked up from the city by index at append time.
type rawSDE struct {
	kind    int // 0 = bus, 1 = sensor
	index   int
	t       rtec.Time
	arrival rtec.Time

	// bus fields
	pos       geo.Point
	delay     int64
	direction int
	congested bool

	// sensor fields
	density float64
	flow    float64
}

// Next returns the next SDE in occurrence order. Dropped events
// (mediator losses) are skipped transparently. ok is false when the
// range is exhausted.
func (g *Generator) Next() (SDE, bool) {
	raw, ok := g.nextRaw()
	if !ok {
		return SDE{}, false
	}
	return SDE{Event: g.materialize(raw), Arrival: raw.arrival}, true
}

// nextRaw advances the generator by one emitted event, skipping
// mediator drops. All randomness is drawn here (and in busRaw /
// sensorRaw), in exactly the order of the historical per-event
// generator, so raw and materialized streams are bit-identical.
func (g *Generator) nextRaw() (rawSDE, bool) {
	for {
		if g.queue.Len() == 0 {
			return rawSDE{}, false
		}
		e := g.queue[0]
		if e.next >= g.until {
			return rawSDE{}, false
		}
		var raw rawSDE
		if e.kind == 0 {
			raw = g.busRaw(e.index, e.next)
			period := g.city.cfg.BusPeriodMin +
				rtec.Time(g.rng.Int63n(int64(g.city.cfg.BusPeriodMax-g.city.cfg.BusPeriodMin)+1))
			g.queue[0].next = e.next + period
		} else {
			raw = g.sensorRaw(e.index, e.next)
			g.queue[0].next = e.next + g.city.cfg.ScatsPeriod
		}
		heap.Fix(&g.queue, 0)

		// Mediator: drop or delay.
		if g.rng.Float64() < g.city.cfg.DropProb {
			continue
		}
		delay := rtec.Time(0)
		if g.city.cfg.MaxDelay > 0 {
			delay = rtec.Time(g.rng.Int63n(int64(g.city.cfg.MaxDelay) + 1))
		}
		raw.arrival = raw.t + delay
		return raw, true
	}
}

// materialize builds the map-backed event of a raw SDE (the per-item
// representation; columnar consumers append the raw fields directly).
func (g *Generator) materialize(r rawSDE) rtec.Event {
	if r.kind == 0 {
		b := &g.city.buses[r.index]
		return traffic.Move(r.t, b.ID, b.Line, b.Operator, r.delay, r.pos, r.direction, r.congested)
	}
	s := &g.city.sensors[r.index]
	ev := traffic.Traffic(r.t, s.ID, s.Intersection, s.Approach, r.density, r.flow)
	ev.Attrs["lon"] = s.Pos.Lon
	ev.Attrs["lat"] = s.Pos.Lat
	return ev
}

// busRaw synthesizes one move SDE: position along the route, the
// schedule delay (which grows inside congested areas and recovers
// outside, driving the delayIncrease CE), and the congestion flag
// (inverted 80% of the time for noisy buses).
func (g *Generator) busRaw(i int, t rtec.Time) rawSDE {
	b := &g.city.buses[i]
	pos := g.city.BusPosition(b, t)
	truth := g.city.IsCongested(pos, t)

	// Delay dynamics: congestion adds up to ~8 s of schedule delay
	// per emission period; free flow recovers ~2 s.
	if truth {
		g.busDelay[i] += 4 + g.rng.Float64()*4
	} else if g.busDelay[i] > 0 {
		g.busDelay[i] -= 2 * g.rng.Float64()
		if g.busDelay[i] < 0 {
			g.busDelay[i] = 0
		}
	}

	report := truth
	if b.Noisy && g.rng.Float64() < 0.8 {
		report = !truth
	}
	return rawSDE{
		kind:      0,
		index:     i,
		t:         t,
		pos:       pos,
		delay:     int64(g.busDelay[i]),
		direction: g.city.busDirection(b, t),
		congested: report,
	}
}

// sensorRaw synthesizes one traffic SDE with measurement noise. The
// event carries the intersection coordinates as extra attributes so
// the stream can be partitioned geographically.
func (g *Generator) sensorRaw(i int, t rtec.Time) rawSDE {
	s := &g.city.sensors[i]
	density, flow := g.city.SensorReading(s, t)
	density += g.rng.NormFloat64() * 0.02
	flow += g.rng.NormFloat64() * 40
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	if flow < 0 {
		flow = 0
	}
	return rawSDE{kind: 1, index: i, t: t, density: density, flow: flow}
}

// Collect materializes the SDEs of [from, until), sorted by arrival
// time — the order a live system would receive them in. Suitable for
// spans up to a few hours; use Stream for month-scale runs.
func (c *City) Collect(from, until rtec.Time) []SDE {
	var out []SDE
	g := c.Stream(from, until)
	for {
		sde, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, sde)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}
