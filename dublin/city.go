// Package dublin simulates the data substrate of the paper's
// evaluation: the Dublin bus and SCATS streams of January 2013
// (dublinked.ie). The real streams are 13 GB of recorded data; this
// package generates statistically matched synthetic streams instead —
// same entity counts (942 buses, 966 SCATS sensors), same emission
// periods (buses every 20–30 s, SCATS every 6 min, ≈ one bus SDE every
// 2 s in aggregate), same attribute schemas, the same four-region
// partition used to distribute CE recognition — driven by a seeded,
// fully deterministic city model.
//
// Unlike the recorded streams, the synthetic city has an explicit
// ground-truth congestion field, so the veracity-handling components
// can be scored against truth: noisy buses are simulated by flipping
// congestion reports, and mediators inject the delays, drops and
// aggregation artefacts that motivate the paper's windowing and
// crowdsourcing machinery.
package dublin

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// Config parameterizes the synthetic city.
type Config struct {
	// Seed drives every random choice; the same seed reproduces the
	// same city and the same streams.
	Seed int64
	// NumBuses is the bus fleet size. Default 942, the paper's count.
	NumBuses int
	// NumSensors is the SCATS detector count. Default 966.
	NumSensors int
	// Graph is the street network; generated with the default
	// DublinConfig when nil.
	Graph *citygraph.Graph
	// BusPeriodMin/Max bound the per-bus emission period in seconds.
	// Defaults 20 and 30 ("buses transmit information about their
	// position and congestions every 20-30 sec").
	BusPeriodMin, BusPeriodMax rtec.Time
	// ScatsPeriod is the SCATS emission period in seconds. Default
	// 360 ("static sensors ... transmit every 6 minutes").
	ScatsPeriod rtec.Time
	// Hotspots is the number of congestion centers. Default 40.
	Hotspots int
	// NoisyBusFraction is the fraction of buses with a faulty
	// congestion detector that inverts its report 80% of the time.
	// Default 0.05.
	NoisyBusFraction float64
	// NoisyScatsFraction is the fraction of SCATS sensors that are
	// miscalibrated and report the inverse congestion state (the
	// mediator-interference failure mode of Section 1; the paper
	// sketches crowd-based SCATS reliability evaluation in
	// Section 4.3). Default 0.
	NoisyScatsFraction float64
	// DropProb is the probability that a mediator silently drops an
	// SDE. Default 0.01.
	DropProb float64
	// MaxDelay is the maximum mediator-induced arrival delay in
	// seconds (uniform in [0, MaxDelay]). Default 45. Delays are what
	// make working memories larger than the step worthwhile (Fig. 2).
	MaxDelay rtec.Time
	// Incidents is the number of random traffic incidents (accidents,
	// breakdowns) injected over each simulated day: sudden, localized
	// congestion decoupled from the rush-hour pattern — the "unusual
	// events throughout the network" the INSIGHT project wants
	// detected. Default 0.
	Incidents int
	// RouteLength is the number of street segments in each bus
	// line's loop. Default 120.
	RouteLength int
	// EdgeSeconds is the nominal traversal time of one street
	// segment. Default 40.
	EdgeSeconds rtec.Time
}

func (c Config) withDefaults() Config {
	if c.NumBuses == 0 {
		c.NumBuses = 942
	}
	if c.NumSensors == 0 {
		c.NumSensors = 966
	}
	if c.BusPeriodMin == 0 {
		c.BusPeriodMin = 20
	}
	if c.BusPeriodMax == 0 {
		c.BusPeriodMax = 30
	}
	if c.ScatsPeriod == 0 {
		c.ScatsPeriod = 360
	}
	if c.Hotspots == 0 {
		c.Hotspots = 40
	}
	if c.NoisyBusFraction == 0 {
		c.NoisyBusFraction = 0.05
	}
	if c.DropProb == 0 {
		c.DropProb = 0.01
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 45
	}
	if c.RouteLength == 0 {
		c.RouteLength = 120
	}
	if c.EdgeSeconds == 0 {
		c.EdgeSeconds = 40
	}
	return c
}

// CongestionTruthThreshold is the ground-truth intensity above which a
// location counts as congested. The sensor reading model is calibrated
// so that the default CE thresholds of the traffic package detect
// congestion at the same intensity.
const CongestionTruthThreshold = 0.7

// Sensor is a SCATS vehicle detector placed at a street junction.
type Sensor struct {
	ID           string
	Intersection string
	Approach     string
	Vertex       int
	Pos          geo.Point
	// Noisy marks a miscalibrated detector that reports the inverse
	// congestion state.
	Noisy bool
}

// Bus is one vehicle of the fleet.
type Bus struct {
	ID       string
	Line     string
	Operator string
	Noisy    bool // faulty congestion detector
	route    []int
	offset   rtec.Time // phase offset of the loop
}

// hotspot is a congestion center with a daily activity profile.
type hotspot struct {
	center   geo.Point
	radiusM  float64
	peak     float64 // peak intensity in (0, 1]
	morning  float64 // center of the morning peak, hours
	evening  float64 // center of the evening peak, hours
	widthH   float64 // peak width, hours
	baseline float64 // off-peak intensity
}

// Incident is a sudden localized congestion event (an accident or
// breakdown), independent of the daily rush pattern.
type Incident struct {
	Center   geo.Point
	RadiusM  float64
	Start    rtec.Time // seconds into the day
	Duration rtec.Time
	Severity float64 // peak intensity in (0, 1]
}

// active reports the incident's temporal envelope at daily second t
// (ramping up and down over 10% of the duration at each edge).
func (in Incident) intensityAt(t rtec.Time) float64 {
	if t < in.Start || t > in.Start+in.Duration {
		return 0
	}
	ramp := float64(in.Duration) / 10
	into := float64(t - in.Start)
	left := float64(in.Start + in.Duration - t)
	f := 1.0
	if into < ramp {
		f = into / ramp
	}
	if left < ramp && left/ramp < f {
		f = left / ramp
	}
	return in.Severity * f
}

// City is the deterministic synthetic city: street network, SCATS
// deployment, bus fleet and ground-truth congestion field.
type City struct {
	cfg           Config
	graph         *citygraph.Graph
	sensors       []Sensor
	intersections []traffic.Intersection
	buses         []Bus
	hotspots      []hotspot
	incidents     []Incident
}

// NewCity builds the city for the configuration.
func NewCity(cfg Config) (*City, error) {
	cfg = cfg.withDefaults()
	if cfg.BusPeriodMin <= 0 || cfg.BusPeriodMax < cfg.BusPeriodMin {
		return nil, fmt.Errorf("dublin: invalid bus period bounds [%d, %d]", cfg.BusPeriodMin, cfg.BusPeriodMax)
	}
	if cfg.NumBuses < 0 || cfg.NumSensors < 0 {
		return nil, fmt.Errorf("dublin: negative entity counts")
	}
	g := cfg.Graph
	if g == nil {
		g = citygraph.GenerateDublin(citygraph.DublinConfig{Seed: cfg.Seed})
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("dublin: empty street network")
	}
	c := &City{cfg: cfg, graph: g}
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	c.placeSensors(r)
	c.placeHotspots(r)
	c.buildFleet(r)
	c.scheduleIncidents(r)
	return c, nil
}

// scheduleIncidents draws the day's random incidents.
func (c *City) scheduleIncidents(r *rand.Rand) {
	n := c.graph.NumVertices()
	for i := 0; i < c.cfg.Incidents; i++ {
		v := c.graph.Vertex(r.Intn(n))
		c.incidents = append(c.incidents, Incident{
			Center:   v.Pos,
			RadiusM:  300 + r.Float64()*400,
			Start:    rtec.Time(r.Int63n(24 * 3600)),
			Duration: rtec.Time(1800 + r.Int63n(3600)), // 30-90 min
			Severity: 0.8 + r.Float64()*0.2,
		})
	}
}

// Incidents returns the day's scheduled incidents (shared slice).
func (c *City) Incidents() []Incident { return c.incidents }

// placeSensors distributes the SCATS detectors over junction
// intersections, 1-4 sensors per intersection.
func (c *City) placeSensors(r *rand.Rand) {
	n := c.graph.NumVertices()
	perm := r.Perm(n)
	placed := 0
	for _, v := range perm {
		if placed >= c.cfg.NumSensors {
			break
		}
		// Prefer junctions where several streets meet.
		want := 1 + r.Intn(4)
		if deg := c.graph.Degree(v); want > deg && deg > 0 {
			want = deg
		}
		if placed+want > c.cfg.NumSensors {
			want = c.cfg.NumSensors - placed
		}
		interID := fmt.Sprintf("int%04d", len(c.intersections))
		inter := traffic.Intersection{
			ID:             interID,
			Pos:            c.graph.Vertex(v).Pos,
			SensorApproach: make(map[string]string),
		}
		for k := 0; k < want; k++ {
			s := Sensor{
				ID:           fmt.Sprintf("scats%04d", placed),
				Intersection: interID,
				Approach:     fmt.Sprintf("A%d", k+1),
				Vertex:       v,
				Pos:          inter.Pos,
				Noisy:        r.Float64() < c.cfg.NoisyScatsFraction,
			}
			inter.Sensors = append(inter.Sensors, s.ID)
			inter.SensorApproach[s.ID] = s.Approach
			c.sensors = append(c.sensors, s)
			placed++
		}
		c.intersections = append(c.intersections, inter)
	}
}

func (c *City) placeHotspots(r *rand.Rand) {
	n := c.graph.NumVertices()
	for i := 0; i < c.cfg.Hotspots; i++ {
		v := c.graph.Vertex(r.Intn(n))
		c.hotspots = append(c.hotspots, hotspot{
			center:   v.Pos,
			radiusM:  400 + r.Float64()*800,
			peak:     0.75 + r.Float64()*0.25,
			morning:  8 + r.NormFloat64()*0.5,
			evening:  17.5 + r.NormFloat64()*0.5,
			widthH:   1 + r.Float64(),
			baseline: r.Float64() * 0.25,
		})
	}
}

func (c *City) buildFleet(r *rand.Rand) {
	operators := []string{"DublinBus", "GoAhead", "BusEireann", "Luas"}
	n := c.graph.NumVertices()
	for i := 0; i < c.cfg.NumBuses; i++ {
		route := randomLoop(c.graph, r.Intn(n), c.cfg.RouteLength, r)
		c.buses = append(c.buses, Bus{
			ID:       fmt.Sprintf("bus%05d", 33000+i),
			Line:     fmt.Sprintf("r%d", 1+i/4), // ~4 buses per line
			Operator: operators[i%len(operators)],
			Noisy:    r.Float64() < c.cfg.NoisyBusFraction,
			route:    route,
			offset:   rtec.Time(r.Intn(int(c.cfg.EdgeSeconds) * len(route))),
		})
	}
}

// randomLoop walks the graph avoiding immediate backtracking and
// closes the loop by appending the reverse path.
func randomLoop(g *citygraph.Graph, start, length int, r *rand.Rand) []int {
	if length < 2 {
		length = 2
	}
	out := make([]int, 0, 2*length)
	out = append(out, start)
	prev := -1
	cur := start
	for len(out) < length {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		next := nbrs[r.Intn(len(nbrs))]
		if next == prev && len(nbrs) > 1 {
			// try once more to avoid an immediate U-turn
			next = nbrs[r.Intn(len(nbrs))]
		}
		out = append(out, next)
		prev, cur = cur, next
	}
	// Close the loop by driving back the same way (a bus line's
	// return direction).
	for i := len(out) - 2; i > 0; i-- {
		out = append(out, out[i])
	}
	return out
}

// Graph returns the street network.
func (c *City) Graph() *citygraph.Graph { return c.graph }

// Sensors returns the SCATS deployment (shared slice).
func (c *City) Sensors() []Sensor { return c.sensors }

// Intersections returns the SCATS intersections (shared slice).
func (c *City) Intersections() []traffic.Intersection { return c.intersections }

// Buses returns the fleet (shared slice).
func (c *City) Buses() []Bus { return c.buses }

// Registry builds the traffic.Registry of the SCATS intersections with
// the given close-predicate threshold in meters.
func (c *City) Registry(closeMeters float64) (*traffic.Registry, error) {
	return traffic.NewRegistry(c.intersections, closeMeters)
}

// CongestionAt returns the ground-truth congestion intensity in [0, 1]
// at a location and absolute time (seconds). The field is a sum of
// hotspot contributions, each following a double-peaked (morning and
// evening rush hour) daily profile with Gaussian spatial decay.
func (c *City) CongestionAt(p geo.Point, t rtec.Time) float64 {
	hour := float64(t%(24*3600)) / 3600
	var best float64
	for i := range c.hotspots {
		h := &c.hotspots[i]
		d := geo.Distance(p, h.center)
		if d > 3*h.radiusM {
			continue
		}
		spatial := math.Exp(-d * d / (2 * h.radiusM * h.radiusM))
		temporal := h.baseline +
			(h.peak-h.baseline)*gauss(hour, h.morning, h.widthH) +
			(h.peak-h.baseline)*gauss(hour, h.evening, h.widthH)
		if v := spatial * temporal; v > best {
			best = v
		}
	}
	daily := t % (24 * 3600)
	for i := range c.incidents {
		in := &c.incidents[i]
		temporal := in.intensityAt(daily)
		if temporal == 0 {
			continue
		}
		d := geo.Distance(p, in.Center)
		if d > 3*in.RadiusM {
			continue
		}
		spatial := math.Exp(-d * d / (2 * in.RadiusM * in.RadiusM))
		if v := spatial * temporal; v > best {
			best = v
		}
	}
	if best > 1 {
		best = 1
	}
	return best
}

func gauss(x, mu, sigma float64) float64 {
	d := x - mu
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// IsCongested reports the ground truth congestion state at a location
// and time.
func (c *City) IsCongested(p geo.Point, t rtec.Time) bool {
	return c.CongestionAt(p, t) >= CongestionTruthThreshold
}

// BusPosition returns where a bus is at an absolute time, interpolated
// along its looped route.
func (c *City) BusPosition(b *Bus, t rtec.Time) geo.Point {
	if len(b.route) < 2 {
		return c.graph.Vertex(b.route[0]).Pos
	}
	loop := rtec.Time(len(b.route)) * c.cfg.EdgeSeconds
	phase := (t + b.offset) % loop
	idx := int(phase / c.cfg.EdgeSeconds)
	frac := float64(phase%c.cfg.EdgeSeconds) / float64(c.cfg.EdgeSeconds)
	from := c.graph.Vertex(b.route[idx]).Pos
	to := c.graph.Vertex(b.route[(idx+1)%len(b.route)]).Pos
	return geo.Point{
		Lat: from.Lat + (to.Lat-from.Lat)*frac,
		Lon: from.Lon + (to.Lon-from.Lon)*frac,
	}
}

// busDirection reports which half of the loop the bus is on (0
// outbound, 1 return), the paper's gps Direction attribute.
func (c *City) busDirection(b *Bus, t rtec.Time) int {
	loop := rtec.Time(len(b.route)) * c.cfg.EdgeSeconds
	phase := (t + b.offset) % loop
	if int(phase/c.cfg.EdgeSeconds) < len(b.route)/2 {
		return 0
	}
	return 1
}

// SensorReading returns the (density, flow) pair a SCATS sensor
// measures at time t, before mediator noise. The mapping is calibrated
// against the traffic package's default thresholds: intensity ≥ 0.7
// produces density ≥ 0.35 and flow ≤ 600 (the fundamental diagram's
// congested branch: high density, low flow).
func (c *City) SensorReading(s *Sensor, t rtec.Time) (density, flow float64) {
	intensity := c.CongestionAt(s.Pos, t)
	if s.Noisy {
		intensity = 1 - intensity // miscalibrated detector
	}
	density = 0.05 + 0.9*intensity
	flow = 1500 - 1300*intensity
	return density, flow
}

// PartitionOf assigns an event to one of the geo.NumRegions Dublin
// areas by its coordinates, for distributed CE recognition. Events
// without coordinates go to the Central partition.
func PartitionOf(e rtec.Event) int {
	lon, ok1 := e.Float("lon")
	lat, ok2 := e.Float("lat")
	if !ok1 || !ok2 {
		return int(geo.Central)
	}
	return int(geo.RegionOf(geo.LonLat(lon, lat)))
}

// PartitionOfBlock is the block-level counterpart of PartitionOf for
// rtec.Partitioned.SetBlockAssign: the coordinate columns are located
// once per block, and the returned function assigns one row by
// indexing them directly — the same partition PartitionOf computes on
// the row's view Event, including the float coercion and the Central
// fallback for rows without coordinates.
func PartitionOfBlock(b *rtec.Block) func(int) int {
	lon, lat := b.Column("lon"), b.Column("lat")
	at := func(c *rtec.BCol, i int) (float64, bool) {
		switch {
		case c == nil:
			return 0, false
		case c.Kind == rtec.ColFloat:
			return c.F[i], true
		case c.Kind == rtec.ColInt:
			return float64(c.I[i]), true
		}
		return 0, false
	}
	return func(i int) int {
		x, ok1 := at(lon, i)
		y, ok2 := at(lat, i)
		if !ok1 || !ok2 {
			return int(geo.Central)
		}
		return int(geo.RegionOf(geo.LonLat(x, y)))
	}
}
