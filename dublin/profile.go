package dublin

import "github.com/insight-dublin/insight/citygraph"

// Profile10x returns a city configuration at roughly ten times the
// paper's Dublin deployment: a street network with ~10× the junctions
// (the same bounding window, denser grid), 9420 buses and 9660 SCATS
// sensors instead of 942/966, and proportionally more congestion
// hotspots. This is the scale-out profile the sharded recognition tier
// is benchmarked on (cmd/shardbench): one engine cannot keep up with
// the bus feed at this density, N shards can.
func Profile10x(seed int64) Config {
	return Config{
		Seed:       seed,
		NumBuses:   9420,
		NumSensors: 9660,
		Hotspots:   400,
		Graph: citygraph.GenerateDublin(citygraph.DublinConfig{
			GridX: 114,
			GridY: 70,
			Seed:  seed,
		}),
	}
}
