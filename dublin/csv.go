package dublin

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// CSV codecs in the spirit of the dublinked.ie exports, so generated
// streams can be persisted, inspected and replayed. One row per SDE;
// the extra "arrival" column preserves mediator delays for faithful
// replay.

var busHeader = []string{"timestamp", "bus", "line", "operator", "delay", "lon", "lat", "direction", "congestion", "arrival"}
var scatsHeader = []string{"timestamp", "sensor", "intersection", "approach", "density", "flow", "lon", "lat", "arrival"}

// WriteBusCSV writes the bus SDEs among sdes to w.
func WriteBusCSV(w io.Writer, sdes []SDE) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(busHeader); err != nil {
		return err
	}
	for _, s := range sdes {
		if s.Event.Type != traffic.MoveType {
			continue
		}
		e := s.Event
		line, _ := e.Str("line")
		op, _ := e.Str("operator")
		delay, _ := e.Int("delay")
		lon, _ := e.Float("lon")
		lat, _ := e.Float("lat")
		dir, _ := e.Int("direction")
		cong, _ := e.Bool("congested")
		congStr := "0"
		if cong {
			congStr = "1"
		}
		rec := []string{
			strconv.FormatInt(int64(e.Time), 10),
			e.Key, line, op,
			strconv.FormatInt(delay, 10),
			strconv.FormatFloat(lon, 'f', 6, 64),
			strconv.FormatFloat(lat, 'f', 6, 64),
			strconv.FormatInt(dir, 10),
			congStr,
			strconv.FormatInt(int64(s.Arrival), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScatsCSV writes the SCATS SDEs among sdes to w.
func WriteScatsCSV(w io.Writer, sdes []SDE) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(scatsHeader); err != nil {
		return err
	}
	for _, s := range sdes {
		if s.Event.Type != traffic.TrafficType {
			continue
		}
		e := s.Event
		inter, _ := e.Str("intersection")
		app, _ := e.Str("approach")
		density, _ := e.Float("density")
		flow, _ := e.Float("flow")
		lon, _ := e.Float("lon")
		lat, _ := e.Float("lat")
		rec := []string{
			strconv.FormatInt(int64(e.Time), 10),
			e.Key, inter, app,
			strconv.FormatFloat(density, 'f', 4, 64),
			strconv.FormatFloat(flow, 'f', 2, 64),
			strconv.FormatFloat(lon, 'f', 6, 64),
			strconv.FormatFloat(lat, 'f', 6, 64),
			strconv.FormatInt(int64(s.Arrival), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadBusCSV parses a bus SDE file written by WriteBusCSV.
func ReadBusCSV(r io.Reader) ([]SDE, error) {
	rows, err := readCSV(r, busHeader)
	if err != nil {
		return nil, err
	}
	out := make([]SDE, 0, len(rows))
	for i, rec := range rows {
		t, err1 := strconv.ParseInt(rec[0], 10, 64)
		delay, err2 := strconv.ParseInt(rec[4], 10, 64)
		lon, err3 := strconv.ParseFloat(rec[5], 64)
		lat, err4 := strconv.ParseFloat(rec[6], 64)
		dir, err5 := strconv.ParseInt(rec[7], 10, 64)
		arrival, err6 := strconv.ParseInt(rec[9], 10, 64)
		if err := firstErr(err1, err2, err3, err4, err5, err6); err != nil {
			return nil, fmt.Errorf("dublin: bus CSV row %d: %w", i+2, err)
		}
		ev := traffic.Move(rtec.Time(t), rec[1], rec[2], rec[3], delay,
			geo.LonLat(lon, lat), int(dir), rec[8] == "1")
		out = append(out, SDE{Event: ev, Arrival: rtec.Time(arrival)})
	}
	return out, nil
}

// ReadScatsCSV parses a SCATS SDE file written by WriteScatsCSV.
func ReadScatsCSV(r io.Reader) ([]SDE, error) {
	rows, err := readCSV(r, scatsHeader)
	if err != nil {
		return nil, err
	}
	out := make([]SDE, 0, len(rows))
	for i, rec := range rows {
		t, err1 := strconv.ParseInt(rec[0], 10, 64)
		density, err2 := strconv.ParseFloat(rec[4], 64)
		flow, err3 := strconv.ParseFloat(rec[5], 64)
		lon, err4 := strconv.ParseFloat(rec[6], 64)
		lat, err5 := strconv.ParseFloat(rec[7], 64)
		arrival, err6 := strconv.ParseInt(rec[8], 10, 64)
		if err := firstErr(err1, err2, err3, err4, err5, err6); err != nil {
			return nil, fmt.Errorf("dublin: SCATS CSV row %d: %w", i+2, err)
		}
		ev := traffic.Traffic(rtec.Time(t), rec[1], rec[2], rec[3], density, flow)
		ev.Attrs["lon"] = lon
		ev.Attrs["lat"] = lat
		out = append(out, SDE{Event: ev, Arrival: rtec.Time(arrival)})
	}
	return out, nil
}

func readCSV(r io.Reader, wantHeader []string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(wantHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dublin: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dublin: empty CSV (missing header)")
	}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			return nil, fmt.Errorf("dublin: CSV header mismatch: got %q, want %q", rows[0][i], h)
		}
	}
	return rows[1:], nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
