package dublin

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// smallConfig keeps the test city fast while preserving structure.
func smallConfig() Config {
	return Config{
		Seed:       11,
		NumBuses:   30,
		NumSensors: 40,
		Hotspots:   10,
	}
}

func mustCity(t *testing.T, cfg Config) *City {
	t.Helper()
	c, err := NewCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCityValidation(t *testing.T) {
	if _, err := NewCity(Config{NumBuses: -1}); err == nil {
		t.Error("negative bus count must error")
	}
	if _, err := NewCity(Config{BusPeriodMin: 30, BusPeriodMax: 20}); err == nil {
		t.Error("inverted period bounds must error")
	}
}

func TestCityDeterminism(t *testing.T) {
	c1 := mustCity(t, smallConfig())
	c2 := mustCity(t, smallConfig())
	if len(c1.Sensors()) != len(c2.Sensors()) || len(c1.Buses()) != len(c2.Buses()) {
		t.Fatal("same seed must build identical cities")
	}
	for i := range c1.Sensors() {
		if c1.Sensors()[i] != c2.Sensors()[i] {
			t.Fatal("sensor placement must be deterministic")
		}
	}
	s1 := c1.Collect(0, 600)
	s2 := c2.Collect(0, 600)
	if len(s1) != len(s2) {
		t.Fatalf("stream lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Event.Time != s2[i].Event.Time || s1[i].Event.Key != s2[i].Event.Key ||
			s1[i].Arrival != s2[i].Arrival {
			t.Fatal("streams must be identical for the same seed")
		}
	}
}

func TestCityEntityCounts(t *testing.T) {
	c := mustCity(t, smallConfig())
	if len(c.Buses()) != 30 {
		t.Errorf("buses = %d", len(c.Buses()))
	}
	if len(c.Sensors()) != 40 {
		t.Errorf("sensors = %d", len(c.Sensors()))
	}
	// Every sensor belongs to exactly one intersection and the
	// intersection's sensor list is consistent.
	byInter := make(map[string]int)
	for _, s := range c.Sensors() {
		byInter[s.Intersection]++
	}
	total := 0
	for _, in := range c.Intersections() {
		if len(in.Sensors) == 0 || len(in.Sensors) > 4 {
			t.Errorf("intersection %s has %d sensors", in.ID, len(in.Sensors))
		}
		if byInter[in.ID] != len(in.Sensors) {
			t.Errorf("intersection %s sensor list inconsistent", in.ID)
		}
		total += len(in.Sensors)
	}
	if total != 40 {
		t.Errorf("intersection sensor lists cover %d sensors, want 40", total)
	}
}

func TestDefaultEntityCountsMatchPaper(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.NumBuses != 942 || cfg.NumSensors != 966 {
		t.Errorf("defaults = %d buses, %d sensors; paper says 942 and 966",
			cfg.NumBuses, cfg.NumSensors)
	}
	if cfg.BusPeriodMin != 20 || cfg.BusPeriodMax != 30 || cfg.ScatsPeriod != 360 {
		t.Error("default emission periods must match the paper")
	}
}

func TestStreamRatesMatchPaper(t *testing.T) {
	// With the full fleet, the bus stream must average roughly one
	// SDE every 2 seconds and sensors every 6 minutes (Section 7).
	c := mustCity(t, Config{Seed: 3}) // full 942/966 city
	sdes := c.Collect(0, 30*60)       // half an hour
	st := ComputeStats(sdes)

	if st.DistinctBuses < 900 {
		t.Errorf("only %d distinct buses emitted", st.DistinctBuses)
	}
	if st.DistinctSensors < 930 {
		t.Errorf("only %d distinct sensors emitted", st.DistinctSensors)
	}
	if st.MeanBusPeriod < 20 || st.MeanBusPeriod > 31 {
		t.Errorf("mean bus period = %.1f s, want 20-30", st.MeanBusPeriod)
	}
	if math.Abs(st.MeanScatsPeriod-360) > 5 {
		t.Errorf("mean SCATS period = %.1f s, want ≈ 360", st.MeanScatsPeriod)
	}
	if st.MeanBusInterarrival > 2.5 {
		t.Errorf("fleet inter-arrival = %.2f s, paper reports ≈ 2 s", st.MeanBusInterarrival)
	}
	// ~1% drop rate: events ≈ duration/period * fleet * 0.99.
	if st.BusEvents < 60000 {
		t.Errorf("bus events = %d, want > 60000 in 30 min", st.BusEvents)
	}
	if st.MaxDelay <= 0 || st.MaxDelay > 45 {
		t.Errorf("max mediator delay = %d, want within (0, 45]", int64(st.MaxDelay))
	}
	if s := st.String(); len(s) == 0 {
		t.Error("Stats.String empty")
	}
}

func TestEventsWellFormed(t *testing.T) {
	c := mustCity(t, smallConfig())
	sdes := c.Collect(0, 900)
	if len(sdes) == 0 {
		t.Fatal("no events generated")
	}
	box := geo.Dublin.Expand(0.01, 0.01)
	prevArrival := rtec.Time(0)
	for _, sde := range sdes {
		e := sde.Event
		if sde.Arrival < e.Time {
			t.Fatalf("arrival before occurrence: %v", sde)
		}
		if sde.Arrival < prevArrival {
			t.Fatal("Collect must sort by arrival")
		}
		prevArrival = sde.Arrival
		lon, _ := e.Float("lon")
		lat, _ := e.Float("lat")
		if !box.Contains(geo.LonLat(lon, lat)) {
			t.Fatalf("event outside Dublin: %v (%f, %f)", e, lat, lon)
		}
		switch e.Type {
		case traffic.MoveType:
			if d, ok := e.Int("delay"); !ok || d < 0 {
				t.Fatalf("bad delay on %v", e)
			}
			if _, ok := e.Bool("congested"); !ok {
				t.Fatalf("missing congested flag on %v", e)
			}
		case traffic.TrafficType:
			d, _ := e.Float("density")
			f, _ := e.Float("flow")
			if d < 0 || d > 1 || f < 0 || f > 2000 {
				t.Fatalf("implausible reading: density=%f flow=%f", d, f)
			}
		default:
			t.Fatalf("unexpected event type %q", e.Type)
		}
	}
}

func TestGroundTruthRushHour(t *testing.T) {
	c := mustCity(t, Config{Seed: 5, NumBuses: 5, NumSensors: 5, Hotspots: 25})
	// Congestion at hotspot centers must be higher at 8am than 3am.
	morning := rtec.Time(8 * 3600)
	night := rtec.Time(3 * 3600)
	higher, total := 0, 0
	for _, h := range c.hotspots {
		am := c.CongestionAt(h.center, morning)
		nt := c.CongestionAt(h.center, night)
		total++
		if am > nt {
			higher++
		}
	}
	if higher*3 < total*2 {
		t.Errorf("only %d/%d hotspots busier at rush hour", higher, total)
	}
	// Far from any hotspot the field is ~0.
	if v := c.CongestionAt(geo.At(52.0, -8.0), morning); v != 0 {
		t.Errorf("remote congestion = %v, want 0", v)
	}
}

func TestSensorReadingCalibration(t *testing.T) {
	c := mustCity(t, smallConfig())
	s := &c.Sensors()[0]
	// Force intensities by probing the formula directly.
	for _, intensity := range []float64{0, 0.3, 0.7, 1.0} {
		density := 0.05 + 0.9*intensity
		flow := 1500 - 1300*intensity
		congestedPerCE := density >= 0.35 && flow <= 600
		if want := intensity >= CongestionTruthThreshold; congestedPerCE != want {
			t.Errorf("intensity %.2f: CE detection %v, truth %v — calibration broken",
				intensity, congestedPerCE, want)
		}
	}
	// And the reading function itself is consistent with the formula.
	d, f := c.SensorReading(s, 0)
	i := c.CongestionAt(s.Pos, 0)
	if math.Abs(d-(0.05+0.9*i)) > 1e-9 || math.Abs(f-(1500-1300*i)) > 1e-9 {
		t.Error("SensorReading disagrees with the documented formula")
	}
}

func TestBusMovement(t *testing.T) {
	c := mustCity(t, smallConfig())
	b := &c.Buses()[0]
	p0 := c.BusPosition(b, 0)
	p1 := c.BusPosition(b, 40)
	p2 := c.BusPosition(b, 80)
	if p0 == p1 && p1 == p2 {
		t.Error("bus never moves")
	}
	// Loop closure: position repeats after a full loop.
	loop := rtec.Time(len(b.route)) * c.cfg.EdgeSeconds
	pLoop := c.BusPosition(b, loop)
	if geo.Distance(p0, pLoop) > 1 {
		t.Errorf("loop does not close: %v vs %v", p0, pLoop)
	}
	// Consecutive positions are street-scale apart (no teleporting).
	for tm := rtec.Time(0); tm < 600; tm += 25 {
		a := c.BusPosition(b, tm)
		bb := c.BusPosition(b, tm+25)
		if geo.Distance(a, bb) > 2000 {
			t.Fatalf("bus teleported %f m in 25 s", geo.Distance(a, bb))
		}
	}
}

func TestNoisyBusesExist(t *testing.T) {
	c := mustCity(t, Config{Seed: 9, NumBuses: 200, NumSensors: 10, NoisyBusFraction: 0.10})
	noisy := 0
	for _, b := range c.Buses() {
		if b.Noisy {
			noisy++
		}
	}
	if noisy < 5 || noisy > 40 {
		t.Errorf("noisy buses = %d of 200 at 10%%", noisy)
	}
}

func TestRegistryFromCity(t *testing.T) {
	c := mustCity(t, smallConfig())
	reg, err := c.Registry(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Intersections()) != len(c.Intersections()) {
		t.Error("registry must contain every intersection")
	}
	// The definitions compile against the generated registry.
	if _, err := traffic.Build(traffic.Config{Registry: reg, Adaptive: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOf(t *testing.T) {
	c := mustCity(t, smallConfig())
	counts := make(map[int]int)
	for _, sde := range c.Collect(0, 1200) {
		p := PartitionOf(sde.Event)
		if p < 0 || p >= int(geo.NumRegions) {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	if len(counts) < 2 {
		t.Errorf("all events in one partition: %v", counts)
	}
	// Events without coordinates default to Central.
	if p := PartitionOf(rtec.NewEvent("crowd", 0, "x", nil)); p != int(geo.Central) {
		t.Errorf("coordinate-less event partition = %d", p)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := mustCity(t, smallConfig())
	sdes := c.Collect(0, 300)

	var busBuf, scatsBuf bytes.Buffer
	if err := WriteBusCSV(&busBuf, sdes); err != nil {
		t.Fatal(err)
	}
	if err := WriteScatsCSV(&scatsBuf, sdes); err != nil {
		t.Fatal(err)
	}
	bus, err := ReadBusCSV(bytes.NewReader(busBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	scats, err := ReadScatsCSV(bytes.NewReader(scatsBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var wantBus, wantScats []SDE
	for _, s := range sdes {
		switch s.Event.Type {
		case traffic.MoveType:
			wantBus = append(wantBus, s)
		case traffic.TrafficType:
			wantScats = append(wantScats, s)
		}
	}
	if len(bus) != len(wantBus) || len(scats) != len(wantScats) {
		t.Fatalf("round trip counts: %d/%d bus, %d/%d scats",
			len(bus), len(wantBus), len(scats), len(wantScats))
	}
	for i := range bus {
		a, b := bus[i], wantBus[i]
		if a.Event.Time != b.Event.Time || a.Event.Key != b.Event.Key || a.Arrival != b.Arrival {
			t.Fatalf("bus row %d differs: %v vs %v", i, a, b)
		}
		ac, _ := a.Event.Bool("congested")
		bc, _ := b.Event.Bool("congested")
		if ac != bc {
			t.Fatalf("bus row %d congested flag differs", i)
		}
		ad, _ := a.Event.Int("delay")
		bd, _ := b.Event.Int("delay")
		if ad != bd {
			t.Fatalf("bus row %d delay differs", i)
		}
	}
	for i := range scats {
		a, b := scats[i], wantScats[i]
		if a.Event.Time != b.Event.Time || a.Event.Key != b.Event.Key || a.Arrival != b.Arrival {
			t.Fatalf("scats row %d differs", i)
		}
		af, _ := a.Event.Float("flow")
		bf, _ := b.Event.Float("flow")
		if math.Abs(af-bf) > 0.01 {
			t.Fatalf("scats row %d flow differs: %f vs %f", i, af, bf)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadBusCSV(bytes.NewReader(nil)); err == nil {
		t.Error("empty bus CSV must error")
	}
	if _, err := ReadScatsCSV(bytes.NewReader([]byte("bogus,header\n"))); err == nil {
		t.Error("wrong header must error")
	}
	bad := "timestamp,bus,line,operator,delay,lon,lat,direction,congestion,arrival\nx,a,b,c,1,2,3,0,1,5\n"
	if _, err := ReadBusCSV(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("non-numeric timestamp must error")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(nil)
	if st.BusEvents != 0 || st.ScatsEvents != 0 {
		t.Error("empty stats must be zero")
	}
}

func TestNoisyScatsSensors(t *testing.T) {
	c := mustCity(t, Config{Seed: 4, NumBuses: 2, NumSensors: 100, NoisyScatsFraction: 0.2})
	noisy := 0
	for i := range c.Sensors() {
		if c.Sensors()[i].Noisy {
			noisy++
		}
	}
	if noisy < 8 || noisy > 40 {
		t.Errorf("noisy sensors = %d of 100 at 20%%", noisy)
	}
	// A miscalibrated sensor reports the inverse state: at a moment
	// and place of real congestion it must report free flow.
	var healthy, faulty *Sensor
	for i := range c.Sensors() {
		s := &c.Sensors()[i]
		if s.Noisy && faulty == nil {
			faulty = s
		}
		if !s.Noisy && healthy == nil {
			healthy = s
		}
	}
	if faulty == nil || healthy == nil {
		t.Fatal("need both kinds of sensor")
	}
	// Compare the faulty sensor against what a healthy sensor at the
	// same spot would report.
	ghost := *faulty
	ghost.Noisy = false
	dFaulty, fFaulty := c.SensorReading(faulty, 8*3600)
	dTrue, fTrue := c.SensorReading(&ghost, 8*3600)
	if dFaulty == dTrue && fFaulty == fTrue {
		t.Error("faulty sensor reads identically to a healthy one")
	}
	// The inversion is symmetric around intensity 0.5.
	wantD := 0.05 + 0.9*(1-(dTrue-0.05)/0.9)
	if math.Abs(dFaulty-wantD) > 1e-9 {
		t.Errorf("faulty density = %v, want %v", dFaulty, wantD)
	}
	// Default configuration has no faulty sensors.
	clean := mustCity(t, smallConfig())
	for i := range clean.Sensors() {
		if clean.Sensors()[i].Noisy {
			t.Fatal("default config must have no miscalibrated sensors")
		}
	}
}

func TestIncidents(t *testing.T) {
	c := mustCity(t, Config{Seed: 8, NumBuses: 2, NumSensors: 10, Incidents: 5})
	if len(c.Incidents()) != 5 {
		t.Fatalf("incidents = %d", len(c.Incidents()))
	}
	in := c.Incidents()[0]
	if in.Duration < 1800 || in.Duration > 5400 {
		t.Errorf("duration = %d, want 30-90 min", int64(in.Duration))
	}
	if in.Severity < 0.8 || in.Severity > 1.0 {
		t.Errorf("severity = %v", in.Severity)
	}
	// At the incident peak, its center is congested; well before the
	// start it contributes nothing.
	mid := in.Start + in.Duration/2
	if got := c.CongestionAt(in.Center, mid); got < 0.7 {
		t.Errorf("congestion at incident peak = %v, want >= 0.7", got)
	}
	// Compare with an identical city WITHOUT incidents at the same
	// time and place: the incident must be the cause.
	clean := mustCity(t, Config{Seed: 8, NumBuses: 2, NumSensors: 10})
	if base := clean.CongestionAt(in.Center, mid); base >= 0.7 {
		t.Skip("hotspot congestion masks the incident at this seed/time")
	}
	// Temporal envelope: zero before start.
	if got := in.intensityAt(in.Start - 100); got != 0 {
		t.Errorf("intensity before start = %v", got)
	}
	if got := in.intensityAt(in.Start + in.Duration/2); got < in.Severity*0.99 {
		t.Errorf("peak intensity = %v, want ~%v", got, in.Severity)
	}
	if got := in.intensityAt(in.Start + in.Duration + 1); got != 0 {
		t.Errorf("intensity after end = %v", got)
	}
	// Default config has none.
	if len(mustCity(t, smallConfig()).Incidents()) != 0 {
		t.Error("default config must schedule no incidents")
	}
}

// Stream and Collect must expose the same events; Collect only adds
// the arrival ordering.
func TestStreamCollectEquivalence(t *testing.T) {
	c := mustCity(t, smallConfig())
	var streamed []SDE
	gen := c.Stream(0, 600)
	for {
		sde, ok := gen.Next()
		if !ok {
			break
		}
		streamed = append(streamed, sde)
	}
	collected := c.Collect(0, 600)
	if len(streamed) != len(collected) {
		t.Fatalf("stream %d events, collect %d", len(streamed), len(collected))
	}
	// Same multiset: compare per-entity occurrence sequences.
	key := func(s SDE) string { return s.Event.Key }
	seq := func(sdes []SDE) map[string][]rtec.Time {
		out := map[string][]rtec.Time{}
		for _, s := range sdes {
			out[key(s)] = append(out[key(s)], s.Event.Time)
		}
		for _, ts := range out {
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		}
		return out
	}
	a, b := seq(streamed), seq(collected)
	if len(a) != len(b) {
		t.Fatal("entity sets differ")
	}
	for k, ts := range a {
		if len(ts) != len(b[k]) {
			t.Fatalf("entity %s event counts differ", k)
		}
		for i := range ts {
			if ts[i] != b[k][i] {
				t.Fatalf("entity %s occurrence %d differs", k, i)
			}
		}
	}
}
