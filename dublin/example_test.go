package dublin_test

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/traffic"
)

// Generating the synthetic Dublin streams: a small city, ten minutes
// of SDEs, and the stream statistics that mirror Section 7's dataset
// description.
func Example() {
	city, err := dublin.NewCity(dublin.Config{
		Seed:       1,
		NumBuses:   10,
		NumSensors: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	sdes := city.Collect(8*3600, 8*3600+600) // 08:00–08:10
	st := dublin.ComputeStats(sdes)
	fmt.Printf("buses emitting: %d, sensors emitting: %d\n", st.DistinctBuses, st.DistinctSensors)
	fmt.Printf("bus emission period: %.0f–%.0f s band\n", 20.0, 30.0)
	fmt.Printf("mean bus period in band: %v\n", st.MeanBusPeriod >= 20 && st.MeanBusPeriod <= 30)

	// Every SDE is a ready-to-use rtec event.
	first := sdes[0].Event
	fmt.Printf("first SDE type is move or traffic: %v\n",
		first.Type == traffic.MoveType || first.Type == traffic.TrafficType)
	// Output:
	// buses emitting: 10, sensors emitting: 12
	// bus emission period: 20–30 s band
	// mean bus period in band: true
	// first SDE type is move or traffic: true
}
