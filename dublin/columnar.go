package dublin

import (
	"sort"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// Columnar emission. CollectBatches is the batched counterpart of
// Collect: the generator's raw events are appended straight into
// typed transport batches — occurrence/arrival times, entity keys and
// numeric attributes land in flat slices, the categorical labels
// (lines, operators, intersections, approaches) in per-column string
// dictionaries — without ever materializing an attribute map. The
// per-item and columnar emissions draw from the same rng in the same
// order, so row i of the batched stream is bit-identical to the i-th
// SDE of the corresponding per-item stream.

// BatchedStream couples an input stream id with its arrival-ordered
// transport batches.
type BatchedStream struct {
	ID      string
	Batches []*streams.Batch
}

// CollectBatches materializes the SDEs of [from, until) as columnar
// transport batches, split into the paper's five input streams ("bus"
// plus one SCATS stream per Dublin region) with rows in arrival order
// within each stream. Batches are cut at maxRows rows (default 512
// when <= 0) and whenever a batch would span more than maxSpan of
// arrival time (0 disables the span cut) — the span cap is what lets
// downstream watermark punctuation stay fine-grained under batching.
// The batches come from the transport pool: the consumer releases
// them.
func (c *City) CollectBatches(from, until rtec.Time, maxRows int, maxSpan rtec.Time) []BatchedStream {
	if maxRows <= 0 {
		maxRows = 512
	}
	g := c.Stream(from, until)
	var raws []rawSDE
	for {
		r, ok := g.nextRaw()
		if !ok {
			break
		}
		raws = append(raws, r)
	}
	// Arrival order, stable — the same permutation Collect applies to
	// the materialized stream.
	sort.SliceStable(raws, func(i, j int) bool { return raws[i].arrival < raws[j].arrival })

	out := []BatchedStream{{ID: "bus"}}
	regionIdx := make([]int, geo.NumRegions)
	for r := 0; r < int(geo.NumRegions); r++ {
		regionIdx[r] = len(out)
		out = append(out, BatchedStream{ID: "scats-" + geo.Region(r).String()})
	}
	open := make([]*streams.Batch, len(out))
	first := make([]rtec.Time, len(out))
	flush := func(si int) {
		if open[si] != nil {
			out[si].Batches = append(out[si].Batches, open[si])
			open[si] = nil
		}
	}
	for _, r := range raws {
		si := 0
		typ := traffic.MoveType
		if r.kind == 1 {
			s := &c.sensors[r.index]
			si = regionIdx[geo.RegionOf(s.Pos)]
			typ = traffic.TrafficType
		}
		if b := open[si]; b != nil &&
			(b.Len() >= maxRows || (maxSpan > 0 && r.arrival-first[si] > maxSpan)) {
			flush(si)
		}
		if open[si] == nil {
			open[si] = streams.GetBatch(typ, out[si].ID)
			first[si] = r.arrival
		}
		g.appendRaw(open[si], r)
	}
	for si := range open {
		flush(si)
	}
	return out
}

// appendRaw appends one raw event as a batch row, columns named and
// typed exactly like the attribute map of the materialized event.
func (g *Generator) appendRaw(b *streams.Batch, r rawSDE) {
	if r.kind == 0 {
		bus := &g.city.buses[r.index]
		b.Append(int64(r.t), int64(r.arrival), bus.ID)
		b.StrCol("line").AppendStr(bus.Line)
		b.StrCol("operator").AppendStr(bus.Operator)
		b.IntCol("delay").AppendInt(r.delay)
		b.FloatCol("lon").AppendFloat(r.pos.Lon)
		b.FloatCol("lat").AppendFloat(r.pos.Lat)
		b.IntCol("direction").AppendInt(int64(r.direction))
		b.BoolCol("congested").AppendBool(r.congested)
		return
	}
	s := &g.city.sensors[r.index]
	b.Append(int64(r.t), int64(r.arrival), s.ID)
	b.StrCol("intersection").AppendStr(s.Intersection)
	b.StrCol("approach").AppendStr(s.Approach)
	b.FloatCol("density").AppendFloat(r.density)
	b.FloatCol("flow").AppendFloat(r.flow)
	b.FloatCol("lon").AppendFloat(s.Pos.Lon)
	b.FloatCol("lat").AppendFloat(s.Pos.Lat)
}

// Block converts a transport batch into an rtec ingestion block. The
// two columnar layouts are deliberately aligned, so the conversion
// aliases the batch's slices instead of copying: the returned block is
// valid only while the batch is live (the engine copies the rows it
// admits, so handing an aliased block to InputBlock is safe).
func Block(b *streams.Batch) *rtec.Block {
	blk := &rtec.Block{
		Type:  b.Type,
		Times: b.Times,
		Keys:  b.Keys,
		KIdx:  b.KIdx,
		KDict: b.KDict,
		Cols:  make([]rtec.BCol, len(b.Cols)),
	}
	for i := range b.Cols {
		sc := &b.Cols[i]
		dc := &blk.Cols[i]
		dc.Name = sc.Name
		switch sc.Kind {
		case streams.ColFloat:
			dc.Kind, dc.F = rtec.ColFloat, sc.F
		case streams.ColInt:
			dc.Kind, dc.I = rtec.ColInt, sc.I
		case streams.ColBool:
			dc.Kind, dc.B = rtec.ColBool, sc.B
		case streams.ColStr:
			dc.Kind, dc.SIdx, dc.Dict = rtec.ColStr, sc.SIdx, sc.Dict
		}
	}
	return blk
}
