package dublin

import (
	"fmt"
	"sort"
	"strings"

	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// Stats summarises a generated stream segment, for checking the
// synthetic substitute against the dataset characteristics the paper
// reports (Section 7: 942 buses emitting every 20–30 s — "on average,
// the bus dataset has a new SDE every 2 seconds" — and 966 SCATS
// sensors emitting every 6 minutes).
type Stats struct {
	From, Until rtec.Time
	BusEvents   int
	ScatsEvents int
	// DistinctBuses / DistinctSensors count the entities that
	// actually emitted.
	DistinctBuses   int
	DistinctSensors int
	// MeanBusInterarrival is the average gap between consecutive bus
	// SDEs across the whole fleet, in seconds.
	MeanBusInterarrival float64
	// MeanBusPeriod is the average per-bus emission period, seconds.
	MeanBusPeriod float64
	// MeanScatsPeriod is the average per-sensor emission period.
	MeanScatsPeriod float64
	// CongestedReports counts bus SDEs reporting congestion.
	CongestedReports int
	// MaxDelay is the largest mediator arrival delay observed.
	MaxDelay rtec.Time
}

// ComputeStats scans a stream segment (any order).
func ComputeStats(sdes []SDE) Stats {
	var s Stats
	if len(sdes) == 0 {
		return s
	}
	s.From, s.Until = sdes[0].Event.Time, sdes[0].Event.Time
	busTimes := make(map[string][]rtec.Time)
	sensorTimes := make(map[string][]rtec.Time)
	var allBusTimes []rtec.Time
	for _, sde := range sdes {
		e := sde.Event
		if e.Time < s.From {
			s.From = e.Time
		}
		if e.Time > s.Until {
			s.Until = e.Time
		}
		if d := sde.Arrival - e.Time; d > s.MaxDelay {
			s.MaxDelay = d
		}
		switch e.Type {
		case traffic.MoveType:
			s.BusEvents++
			busTimes[e.Key] = append(busTimes[e.Key], e.Time)
			allBusTimes = append(allBusTimes, e.Time)
			if c, _ := e.Bool("congested"); c {
				s.CongestedReports++
			}
		case traffic.TrafficType:
			s.ScatsEvents++
			sensorTimes[e.Key] = append(sensorTimes[e.Key], e.Time)
		}
	}
	s.DistinctBuses = len(busTimes)
	s.DistinctSensors = len(sensorTimes)
	s.MeanBusPeriod = meanPeriod(busTimes)
	s.MeanScatsPeriod = meanPeriod(sensorTimes)
	if len(allBusTimes) > 1 {
		span := s.Until - s.From
		s.MeanBusInterarrival = float64(span) / float64(len(allBusTimes)-1)
	}
	return s
}

func meanPeriod(times map[string][]rtec.Time) float64 {
	var total float64
	var n int
	for _, ts := range times {
		// The input may be ordered by arrival rather than
		// occurrence; sort before differencing.
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for i := 1; i < len(ts); i++ {
			total += float64(ts[i] - ts[i-1])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// String renders the stats as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream [%d, %d] (%d s)\n", int64(s.From), int64(s.Until), int64(s.Until-s.From))
	fmt.Fprintf(&b, "  bus SDEs:    %d from %d buses (period %.1f s, fleet inter-arrival %.2f s)\n",
		s.BusEvents, s.DistinctBuses, s.MeanBusPeriod, s.MeanBusInterarrival)
	fmt.Fprintf(&b, "  SCATS SDEs:  %d from %d sensors (period %.1f s)\n",
		s.ScatsEvents, s.DistinctSensors, s.MeanScatsPeriod)
	fmt.Fprintf(&b, "  congested bus reports: %d (%.1f%%)\n",
		s.CongestedReports, 100*float64(s.CongestedReports)/float64(max(1, s.BusEvents)))
	fmt.Fprintf(&b, "  max mediator delay: %d s\n", int64(s.MaxDelay))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
