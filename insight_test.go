package insight

import (
	"context"
	"fmt"
	"testing"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/traffic"
)

func testCity(t *testing.T) *dublin.City {
	t.Helper()
	city, err := dublin.NewCity(dublin.Config{
		Seed:             42,
		NumBuses:         60,
		NumSensors:       60,
		Hotspots:         15,
		NoisyBusFraction: 0.25, // plenty of disagreement material
	})
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func testParticipants(city *dublin.City, n int) []SimParticipant {
	inters := city.Intersections()
	out := make([]SimParticipant, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, SimParticipant{
			ID:        "vol" + string(rune('A'+i)),
			Pos:       inters[i%len(inters)].Pos,
			ErrorProb: 0.1,
			Network:   qee.Network(i % 3),
		})
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing city must error")
	}
}

// TestEndToEndMorningRush drives the full Figure 1 pipeline over a
// synthetic morning rush hour and checks that every component
// produces output: congestion CEs, disagreements, crowdsourcing
// rounds, noisy-bus adaptation and the GP sparsity map.
func TestEndToEndMorningRush(t *testing.T) {
	city := testCity(t)
	sys, err := New(Config{
		City:          city,
		Seed:          7,
		WorkingMemory: 1800,
		Step:          900,
		Participants:  testParticipants(city, 12),
		Traffic: traffic.Config{
			NoisyPolicy: traffic.Pessimistic,
			Adaptive:    true,
		},
		CrowdSelection: crowd.SelectNearest(5, 0),
	})
	if err != nil {
		t.Fatal(err)
	}

	const from, until = 7 * 3600, 9 * 3600 // 07:00–09:00
	var reports []*Report
	err = sys.Run(context.Background(), from, until, func(r *Report) error {
		reports = append(reports, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("reports = %d, want 8 steps", len(reports))
	}

	var totalFed, totalCongested, totalDisagreements, totalCrowd, totalAlerts, totalNoisy int
	for _, r := range reports {
		totalFed += r.FedEvents
		totalCongested += len(r.CongestedIntersections)
		totalDisagreements += len(r.Disagreements)
		totalCrowd += len(r.CrowdRounds)
		totalAlerts += len(r.Alerts)
		totalNoisy += len(r.NoisyBuses)
		if r.Summary() == "" || r.String() == "" {
			t.Error("report rendering empty")
		}
		if r.Stats.InputEvents == 0 && r.FedEvents > 0 {
			// Stats come from the engines: they should have seen the
			// window's events.
			t.Error("engine stats empty despite fed events")
		}
	}
	if totalFed < 10000 {
		t.Errorf("fed %d SDEs over 2 h, expected >> 10k", totalFed)
	}
	if totalCongested == 0 {
		t.Error("no congested intersections during rush hour")
	}
	if totalDisagreements == 0 {
		t.Error("no source disagreements despite noisy buses")
	}
	if totalCrowd == 0 {
		t.Error("no crowdsourcing rounds triggered")
	}
	if totalNoisy == 0 {
		t.Error("no buses flagged noisy under the pessimistic policy")
	}
	if totalAlerts == 0 {
		t.Error("no operator alerts")
	}

	// The estimator has processed the crowd rounds.
	if len(sys.Estimator().Participants()) == 0 {
		t.Error("estimator saw no participants")
	}
	if sys.Definitions() == nil || len(sys.Definitions().Names()) == 0 {
		t.Error("compiled definitions must be exposed")
	}

	// Crowd verdicts are mostly correct given reliable participants.
	correct, total := 0, 0
	for _, r := range reports {
		for _, c := range r.CrowdRounds {
			in, _ := sys.Registry().Lookup(c.Intersection)
			want := traffic.Negative
			if city.IsCongested(in.Pos, c.QueryTime) {
				want = traffic.Positive
			}
			total++
			if c.Verdict.Best == want {
				correct++
			}
		}
	}
	if total > 0 && float64(correct)/float64(total) < 0.7 {
		t.Errorf("crowd verdict accuracy %d/%d, want ≥ 70%%", correct, total)
	}

	// Traffic modelling over the ingested readings.
	est, err := sys.SparsityMap(2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Values) != city.Graph().NumVertices() {
		t.Errorf("sparsity map covers %d of %d junctions", len(est.Values), city.Graph().NumVertices())
	}
	if est.Observations == 0 || len(est.ObservedVertices) == 0 {
		t.Error("sparsity map used no observations")
	}
	// Unobserved junctions got estimates too (the whole point).
	if len(est.ObservedVertices) >= city.Graph().NumVertices() {
		t.Error("no unobserved junctions — sparsity scenario broken")
	}

	// Crowd-augmented traffic model: with crowd rounds recorded, the
	// verdict pseudo-readings must actually influence the estimates.
	if totalCrowd > 0 {
		withCrowd, err := sys.FlowMap(MapConfig{Alpha: 2, Beta: 1, SensorNoise: 100, CrowdNoise: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if withCrowd.Observations <= est.Observations {
			t.Errorf("crowd-augmented map used %d observations, sensor-only %d",
				withCrowd.Observations, est.Observations)
		}
		differs := false
		for i := range est.Values {
			if est.Values[i] != withCrowd.Values[i] {
				differs = true
				break
			}
		}
		if !differs {
			t.Error("crowd pseudo-readings had no effect on the flow map")
		}
	}
}

func TestStepBeforeStart(t *testing.T) {
	city := testCity(t)
	sys, err := New(Config{City: city})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(context.Background(), 100); err == nil {
		t.Error("Step before Start must error")
	}
}

func TestSparsityMapRequiresData(t *testing.T) {
	city := testCity(t)
	sys, err := New(Config{City: city})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SparsityMap(2, 1, 100); err == nil {
		t.Error("sparsity map without readings must error")
	}
}

func TestSystemWithoutCrowd(t *testing.T) {
	city := testCity(t)
	sys, err := New(Config{City: city, WorkingMemory: 1200, Step: 600})
	if err != nil {
		t.Fatal(err)
	}
	var crowdRounds int
	err = sys.Run(context.Background(), 8*3600, 9*3600, func(r *Report) error {
		crowdRounds += len(r.CrowdRounds)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if crowdRounds != 0 {
		t.Error("crowdsourcing must stay disabled without participants")
	}
}

func TestRunContextCancellation(t *testing.T) {
	city := testCity(t)
	sys, err := New(Config{City: city})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.Run(ctx, 0, 7200, nil); err == nil {
		t.Error("cancelled run must return an error")
	}
}

func TestQueryTimeIDRoundTrip(t *testing.T) {
	id := queryTimeID("int0042", 12345)
	tm, ok := parseQueryTime(id)
	if !ok || tm != 12345 {
		t.Errorf("parseQueryTime(%q) = %d, %v", id, int64(tm), ok)
	}
	if _, ok := parseQueryTime("no-marker"); ok {
		t.Error("missing marker must report !ok")
	}
	if _, ok := parseQueryTime("x@notanumber"); ok {
		t.Error("bad number must report !ok")
	}
}

// Replaying the recorded stream must reproduce the live run exactly.
func TestReplayMatchesLive(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	mk := func() *System {
		city := testCity(t)
		sys, err := New(Config{
			City:          city,
			WorkingMemory: 1800,
			Step:          900,
			Traffic:       traffic.Config{Adaptive: true, NoisyPolicy: traffic.Pessimistic},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	live := mk()
	var liveReports []*Report
	if err := live.Run(context.Background(), from, until, func(r *Report) error {
		liveReports = append(liveReports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	replay := mk()
	recorded := testCity(t).Collect(from, until)
	var replayReports []*Report
	if err := replay.RunReplay(context.Background(), recorded, from, until, func(r *Report) error {
		replayReports = append(replayReports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if len(liveReports) != len(replayReports) {
		t.Fatalf("live %d reports, replay %d", len(liveReports), len(replayReports))
	}
	for i := range liveReports {
		l, r := liveReports[i], replayReports[i]
		if l.Q != r.Q || l.FedEvents != r.FedEvents {
			t.Errorf("step %d: Q/FedEvents differ: (%d, %d) vs (%d, %d)",
				i, l.Q, l.FedEvents, r.Q, r.FedEvents)
		}
		if join(l.CongestedIntersections) != join(r.CongestedIntersections) {
			t.Errorf("step %d: congested intersections differ", i)
		}
		if join(l.NoisyBuses) != join(r.NoisyBuses) {
			t.Errorf("step %d: noisy buses differ", i)
		}
	}
}

// A full simulated day at small scale: the system must stay healthy —
// bounded engine state, no error, sane reports — across 96 query
// times including both rush hours and the quiet night.
func TestFullDaySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	city, err := dublin.NewCity(dublin.Config{
		Seed: 9, NumBuses: 40, NumSensors: 40, NoisyBusFraction: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		City:          city,
		Seed:          9,
		WorkingMemory: 1800,
		Step:          900,
		Participants:  testParticipants(city, 6),
		Traffic:       traffic.Config{Adaptive: true, NoisyPolicy: traffic.Pessimistic},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	var rushCongested, nightCongested int
	err = sys.Run(context.Background(), 0, 24*3600, func(r *Report) error {
		steps++
		hour := float64(r.Q%(24*3600)) / 3600
		if hour >= 7.5 && hour <= 9.5 {
			rushCongested += len(r.CongestedIntersections)
		}
		if hour >= 2 && hour <= 4 {
			nightCongested += len(r.CongestedIntersections)
		}
		// The engine must not hoard SDEs beyond its window.
		if r.Stats.InputEvents > 40*90+40*5+50 { // fleet*window/25s + sensors*window/360s + crowd slack
			return fmt.Errorf("window holds %d SDEs — retention leak?", r.Stats.InputEvents)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 96 {
		t.Errorf("steps = %d, want 96", steps)
	}
	if !(rushCongested > nightCongested) {
		t.Errorf("rush hour (%d) must out-congest the night (%d)", rushCongested, nightCongested)
	}
}

// A night-time incident must surface as an unusualCongestion alert —
// the INSIGHT project's headline use case.
func TestIncidentDetection(t *testing.T) {
	// Find a seed/incident combination where an incident strikes a
	// SCATS intersection in the quiet hours.
	for seed := int64(1); seed <= 12; seed++ {
		city, err := dublin.NewCity(dublin.Config{
			Seed: seed, NumBuses: 5, NumSensors: 80, Incidents: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		reg, err := city.Registry(150)
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range city.Incidents() {
			hour := float64(inc.Start%(24*3600)) / 3600
			if hour < 0.5 || hour > 5 { // want a clean night incident
				continue
			}
			near := reg.CloseTo(inc.Center)
			if len(near) == 0 {
				continue // no SCATS intersection under the incident
			}
			// Monitor around the incident.
			sys, err := New(Config{
				City:          city,
				WorkingMemory: 1800,
				Step:          900,
			})
			if err != nil {
				t.Fatal(err)
			}
			var unusual []string
			from := inc.Start - 1800
			until := inc.Start + inc.Duration
			err = sys.Run(context.Background(), from, until, func(r *Report) error {
				unusual = append(unusual, r.UnusualCongestion...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(unusual) == 0 {
				t.Fatalf("seed %d: night incident at %v not flagged as unusual", seed, inc.Center)
			}
			return // scenario found and verified
		}
	}
	t.Skip("no night incident hit a SCATS intersection across the tried seeds")
}
