package insight

// The durable pipeline: the Figure 1 data-flow graph with a write-ahead
// SDE log and checkpointed recovery underneath, so a killed monitoring
// process resumes from its last checkpoint and produces the same CE
// stream an uninterrupted run would — bit-identical, the property the
// crash-equivalence gate (crashcampaign.go) enforces.
//
// Topology. The five input streams feed their validators as usual, but
// the validators write to an "ingest" queue drained by a single
// wal-append process: every batch envelope is encoded (wal codec) and
// appended to the log *before* it is forwarded to the SDE queue, so
// consumption order equals append order and a consumed record is
// always durable (SyncAlways). The monitoring process carries the same
// rtecProcessor as the plain pipeline plus a checkpoint coordinator:
// at query-boundary granularity it persists engine snapshots, stream
// cursors, consumed-but-unadmitted rows and fired-but-unacked reports,
// all keyed to a WAL offset.
//
// Recovery. BuildDurablePipeline loads the newest checkpoint that
// passes its CRC (falling back across corrupt ones), restores the
// engines and processor state, then replays the log from the
// checkpoint's offset through the processor — re-consuming exactly the
// records consumed after the checkpoint plus any appended-but-unread
// tail — before wiring the live topology, whose sources skip the
// envelopes the cursors already account for. Reports fired but not
// acknowledged by the operator sink are re-emitted (at-least-once;
// consumers dedupe by query time, keeping the newest).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/streams/wal"
)

// DurableOptions configures the durable pipeline.
type DurableOptions struct {
	// Dir is the durability root: the WAL lives in Dir/wal, checkpoints
	// in Dir itself. Required.
	Dir string
	// Sync is the WAL fsync policy. The default (SyncAlways) is what
	// the crash-equivalence guarantee assumes.
	Sync wal.SyncPolicy
	// SegmentBytes is the WAL segment size (default 1 MiB).
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint after this many query
	// boundaries (default 1: every boundary).
	CheckpointEvery int
	// WALFailpoint arms crash injection on the append path (chaos
	// harness only).
	WALFailpoint wal.Failpoint
	// CheckpointFailpoint selects a crash mode per checkpoint write
	// (chaos harness only); consulted with the checkpoint's boundary
	// cursor.
	CheckpointFailpoint func(q Time) CheckpointCrash
}

// RecoveryInfo reports what recovery found and did.
type RecoveryInfo struct {
	// Resumed is true when a valid checkpoint was loaded.
	Resumed bool
	// CheckpointQ is the boundary cursor of the loaded checkpoint.
	CheckpointQ Time
	// WALFrontier is the log's append offset after recovery.
	WALFrontier int64
	// TornBytes counts torn-tail bytes discarded from the log.
	TornBytes int64
	// CorruptCheckpoints counts checkpoint files that failed their CRC
	// or decode and were skipped.
	CorruptCheckpoints int
	// ReplayedRecords and ReplayedEvents count the WAL records (and the
	// SDE rows they carry) re-consumed from the checkpoint's offset.
	ReplayedRecords int
	ReplayedEvents  int
	// ReemittedReports counts fired-but-unacked reports restored from
	// the checkpoint for re-emission.
	ReemittedReports int
	// SkippedEnvelopes counts source envelopes the cursors already
	// accounted for, skipped instead of re-ingested.
	SkippedEnvelopes int
}

// durableState is the cross-goroutine slice of the durable runtime:
// the wal-append process records append end offsets, the monitoring
// process translates its consumption count into a WAL offset, and the
// operator sink acknowledges emitted reports.
type durableState struct {
	mu sync.Mutex
	// base is the WAL frontier at epoch start; ends[i] is the end
	// offset of the i-th record appended this epoch.
	base int64
	ends []int64
	// ackQ is the newest query time the operator sink has received.
	ackQ Time
}

func (st *durableState) noteAppend(end int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ends = append(st.ends, end)
}

func (st *durableState) noteAck(q Time) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if q > st.ackQ {
		st.ackQ = q
	}
}

func (st *durableState) acked() Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ackQ
}

// endOf returns the WAL offset every consumed record lies below:
// records append before they are forwarded, so the i-th consumed
// record of the epoch is the i-th appended one and consumed <=
// len(ends) always holds when the consumer calls this.
func (st *durableState) endOf(consumed int) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if consumed == 0 {
		return st.base
	}
	return st.ends[consumed-1]
}

// walAppender is the single-writer append process: batch envelopes are
// logged before they are forwarded, EOF punctuation passes through
// unlogged (it is derived from the collection window, not input).
type walAppender struct {
	log *wal.Log
	st  *durableState
	buf []byte
}

// Process handles the per-item leftovers of batched transport — only
// EOF punctuation is legal here.
func (a *walAppender) Process(it streams.Item) (streams.Item, error) {
	if it.Bool(itemEOF) {
		return it, nil
	}
	return nil, fmt.Errorf("insight: durable pipeline requires columnar transport, got per-item SDE from %q", it.String(itemSource))
}

// ProcessBatch logs the envelope, then forwards it. An append failure
// (a crash point above all) withholds the envelope from the SDE queue:
// a record is consumed only if it is durable.
func (a *walAppender) ProcessBatch(b *streams.Batch) ([]streams.Item, error) {
	a.buf = wal.EncodeBatch(a.buf[:0], b)
	_, end, err := a.log.Append(a.buf)
	if err != nil {
		return nil, err
	}
	a.st.noteAppend(end)
	return []streams.Item{streams.BatchItem(b)}, nil
}

// ackingSink wraps the operator collector: a report is acknowledged
// once it is in the collector, which lets the checkpoint coordinator
// stop carrying it for re-emission.
type ackingSink struct {
	inner *streams.CollectorSink
	st    *durableState
}

func (s *ackingSink) Write(it streams.Item) error {
	if err := s.inner.Write(it); err != nil {
		return err
	}
	if rep, ok := it[itemReport].(*Report); ok {
		s.st.noteAck(rep.Q)
	}
	return nil
}

// durableRuntime is the checkpoint coordinator. All fields except st
// are owned by the goroutine driving the rtecProcessor (recovery
// replay first, then the monitoring process).
type durableRuntime struct {
	opts DurableOptions
	dir  string
	log  *wal.Log
	st   *durableState
	proc *rtecProcessor
	// consumed counts batch envelopes consumed per stream since the
	// window origin — the source skip cursor of the next epoch.
	consumed map[string]int64
	// consumedIdx counts records consumed in the live epoch; indexes
	// st.ends to translate consumption into a WAL offset.
	consumedIdx int
	// live flips on when recovery replay is done: checkpoint writes and
	// the epoch record count only make sense against the live log.
	live bool
	// boundaries counts query boundaries since the last checkpoint.
	boundaries int
	// recent holds fired reports not yet known acknowledged, ascending
	// by query time; pruned against st.ackQ at checkpoint time.
	recent []*Report
	// skipped counts source envelopes skipped at build time.
	skipped int
}

// noteConsumed runs at the top of rtecProcessor.ProcessBatch: the
// envelope is consumed no matter what recognition does with it.
func (rt *durableRuntime) noteConsumed(src string) {
	rt.consumed[src]++
	if rt.live {
		rt.consumedIdx++
	}
}

// noteBoundary runs as each query boundary fires, inside fireDue —
// which may be mid-batch, where a checkpoint must NOT be taken (rows
// of the current batch past the firing row are in neither the engines
// nor pendingRows yet). It only records; maybeCheckpoint persists at
// the next safe point.
func (rt *durableRuntime) noteBoundary(rep *Report) {
	rt.recent = append(rt.recent, rep)
	rt.boundaries++
}

// maybeCheckpoint runs at the processor's safe points — the end of
// ProcessBatch, the end of Process, and Flush after the final fireDue —
// where every consumed record is fully accounted for in engine state
// plus pendingRows. It persists a checkpoint once enough boundaries
// accumulated, then prunes checkpoints and the WAL prefix they no
// longer need.
func (rt *durableRuntime) maybeCheckpoint(p *rtecProcessor) error {
	if !rt.live || rt.boundaries < rt.opts.CheckpointEvery {
		return nil
	}
	return rt.writeCheckpoint(p, rt.opts.CheckpointFailpoint)
}

// writeCheckpoint builds and persists a checkpoint unconditionally,
// routing it through crashAt (nil means no injected failure — the
// recovery-time checkpoint uses this so fault injection only targets
// checkpoints written by the live pipeline).
func (rt *durableRuntime) writeCheckpoint(p *rtecProcessor, crashAt func(Time) CheckpointCrash) error {
	rt.boundaries = 0
	ck, err := rt.buildCheckpoint(p)
	if err != nil {
		return err
	}
	crash := CrashNone
	if crashAt != nil {
		crash = crashAt(ck.nextQ)
	}
	if err := writeCheckpointFile(rt.dir, ck.nextQ, ck.encode(), crash); err != nil {
		return err
	}
	off, err := gcCheckpoints(rt.dir)
	if err != nil {
		return err
	}
	if off >= 0 {
		if err := rt.log.TruncateFront(off); err != nil {
			return err
		}
	}
	return nil
}

// buildCheckpoint captures the processor's recovery state.
func (rt *durableRuntime) buildCheckpoint(p *rtecProcessor) (*checkpoint, error) {
	if len(p.pending) != 0 {
		return nil, fmt.Errorf("insight: durable checkpoint with %d per-item pending SDEs (columnar transport violated)", len(p.pending))
	}
	s := p.system
	engines, err := s.engines.Snapshot()
	if err != nil {
		return nil, err
	}
	ck := &checkpoint{
		nextQ:     p.nextQ,
		walOffset: rt.st.endOf(rt.consumedIdx),
		engines:   engines,
	}
	ids := make([]string, 0, len(p.watermarks))
	for id := range p.watermarks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ck.cursors = append(ck.cursors, streamCursor{
			id:        id,
			consumed:  rt.consumed[id],
			watermark: p.watermarks[id],
		})
	}
	// Consumed-but-unadmitted rows, re-encoded as mini-batches in exact
	// pending order (consecutive rows of one retained batch coalesce):
	// restoring them re-creates pendingRows row for row.
	var run *streams.Batch
	var runPB *pendingBlock
	flushRun := func() {
		if run == nil {
			return
		}
		ck.pendingBatches = append(ck.pendingBatches, wal.EncodeBatch(nil, run))
		run.Release()
		run = nil
	}
	for _, ref := range p.pendingRows {
		if run == nil || ref.pb != runPB {
			flushRun()
			runPB = ref.pb
			run = streams.GetBatch(ref.pb.batch.Type, ref.pb.batch.Source)
		}
		run.AppendRowFrom(ref.pb.batch, int(ref.row))
	}
	flushRun()
	for sensor, tr := range s.lastTraffic {
		ck.traffic = append(ck.traffic, trafficSnap{sensor: sensor, vertex: tr.vertex, flow: tr.flow, t: tr.t})
	}
	sort.Slice(ck.traffic, func(i, j int) bool { return ck.traffic[i].sensor < ck.traffic[j].sensor })
	for inter, cr := range s.lastCrowd {
		ck.crowd = append(ck.crowd, crowdSnap{inter: inter, vertex: cr.vertex, congested: cr.congested, t: cr.t})
	}
	sort.Slice(ck.crowd, func(i, j int) bool { return ck.crowd[i].inter < ck.crowd[j].inter })
	// Fired-but-unacked reports ride along for re-emission; reports the
	// sink has acknowledged are dropped from the carry set.
	ackQ := rt.st.acked()
	kept := rt.recent[:0]
	for _, rep := range rt.recent {
		if rep.Q <= ackQ {
			continue
		}
		kept = append(kept, rep)
		blob, err := json.Marshal(rep)
		if err != nil {
			return nil, err
		}
		ck.reports = append(ck.reports, blob)
	}
	rt.recent = kept
	return ck, nil
}

// BuildDurablePipeline constructs the durable pipeline for SDEs in
// [from, until), recovering from whatever dur.Dir holds: a fresh
// directory starts clean, a crashed epoch's directory resumes from its
// newest valid checkpoint with the log replayed from the checkpoint's
// offset. The returned RecoveryInfo describes what recovery did.
//
// Durable runs require ColumnarTransport (the WAL speaks the columnar
// codec) and refuse a crowdsourcing-enabled system: participant
// queries are effectful, so replaying them would re-ask the crowd.
func (s *System) BuildDurablePipeline(from, until Time, dur DurableOptions) (*Pipeline, *RecoveryInfo, error) {
	if !s.cfg.ColumnarTransport {
		return nil, nil, fmt.Errorf("insight: durable pipeline requires ColumnarTransport")
	}
	if s.qeeEngine != nil {
		return nil, nil, fmt.Errorf("insight: durable pipeline cannot drive crowdsourcing (replay would re-query participants)")
	}
	if dur.Dir == "" {
		return nil, nil, fmt.Errorf("insight: DurableOptions.Dir is required")
	}
	if dur.CheckpointEvery <= 0 {
		dur.CheckpointEvery = 1
	}
	if err := os.MkdirAll(dur.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	walDir := filepath.Join(dur.Dir, "wal")
	log, err := wal.Open(walDir, wal.Options{
		SegmentBytes: dur.SegmentBytes,
		Sync:         dur.Sync,
		Failpoint:    dur.WALFailpoint,
	})
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Pipeline, *RecoveryInfo, error) {
		return nil, nil, errors.Join(err, log.Close())
	}
	info := &RecoveryInfo{TornBytes: log.Torn()}
	ck, ckQ, corrupt, err := loadLatestCheckpoint(dur.Dir)
	if err != nil {
		return fail(err)
	}
	info.CorruptCheckpoints = corrupt

	proc := newRTECProcessor(s, from, until)
	rt := &durableRuntime{
		opts:     dur,
		dir:      dur.Dir,
		log:      log,
		st:       &durableState{},
		proc:     proc,
		consumed: make(map[string]int64, len(pipelineStreamIDs)),
	}
	proc.durable = rt

	var replayFrom int64
	if ck != nil {
		info.Resumed = true
		info.CheckpointQ = ckQ
		if err := s.engines.Restore(ck.engines); err != nil {
			return fail(err)
		}
		s.lastTraffic = make(map[string]trafficReading, len(ck.traffic))
		for _, ts := range ck.traffic {
			s.lastTraffic[ts.sensor] = trafficReading{vertex: ts.vertex, flow: ts.flow, t: ts.t}
		}
		s.lastCrowd = make(map[string]crowdReading, len(ck.crowd))
		for _, cs := range ck.crowd {
			s.lastCrowd[cs.inter] = crowdReading{vertex: cs.vertex, congested: cs.congested, t: cs.t}
		}
		proc.nextQ = ck.nextQ
		for _, cur := range ck.cursors {
			proc.watermarks[cur.id] = cur.watermark
			rt.consumed[cur.id] = cur.consumed
		}
		for _, payload := range ck.pendingBatches {
			b, err := wal.DecodeBatch(payload)
			if err != nil {
				return fail(fmt.Errorf("insight: checkpoint pending batch: %w", err))
			}
			pb := &pendingBlock{batch: b, blk: dublin.Block(b), pending: b.Len()}
			for i := 0; i < b.Len(); i++ {
				proc.pendingRows = append(proc.pendingRows, rowRef{pb: pb, row: int32(i)})
			}
		}
		for _, blob := range ck.reports {
			rep := &Report{}
			if err := json.Unmarshal(blob, rep); err != nil {
				return fail(fmt.Errorf("insight: checkpoint report: %w", err))
			}
			proc.due = append(proc.due, streams.Item{itemReport: rep})
			rt.recent = append(rt.recent, rep)
		}
		info.ReemittedReports = len(ck.reports)
		replayFrom = ck.walOffset
	}

	// Replay the log from the checkpoint's offset through the processor
	// — the exact consumption sequence of the crashed epoch's tail.
	// Boundaries that become due re-fire with the same admitted sets;
	// their reports stack behind the restored unacked ones. The live
	// flag is still down, so noteConsumed advances only the per-stream
	// cursors and maybeCheckpoint stays quiet.
	stash := proc.due
	proc.due = nil
	reader, err := wal.OpenReader(walDir, replayFrom)
	if err != nil {
		return fail(err)
	}
	for {
		payload, _, _, err := reader.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fail(err)
		}
		b, err := wal.DecodeBatch(payload)
		if err != nil {
			return fail(fmt.Errorf("insight: replay record: %w", err))
		}
		info.ReplayedRecords++
		info.ReplayedEvents += b.Len()
		outs, err := proc.ProcessBatch(b)
		if err != nil {
			return fail(err)
		}
		stash = append(stash, outs...)
	}
	info.TornBytes += reader.Torn()
	proc.due = stash
	rt.live = true
	rt.st.base = log.Frontier()
	info.WALFrontier = rt.st.base

	// Recovery checkpoint: after any non-empty replay, persist the
	// recovered state before going live. This bounds replay work across
	// repeated crashes — each recovery starts from the previous one's
	// frontier instead of re-walking the whole log, so a crash loop
	// still makes forward progress even when the replayed tail never
	// crossed a query boundary. Injected checkpoint failures
	// deliberately don't apply here: they model crashes of the live
	// pipeline, and a build-time crash would mask the code path under
	// test.
	if info.ReplayedRecords > 0 {
		if err := rt.writeCheckpoint(proc, nil); err != nil {
			return fail(err)
		}
	}

	pipe, err := s.buildPipeline(from, until, ChaosConfig{}, rt)
	if err != nil {
		return fail(err)
	}
	info.SkippedEnvelopes = rt.skipped
	return pipe, info, nil
}
