package streams

import (
	"context"
	"errors"
	"testing"
)

func chaosDrainAll(src Source) []Item {
	var out []Item
	for {
		it, ok := src.Read()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestChaosSourcePassthrough(t *testing.T) {
	src := NewChaosSource(NewSliceSource(numberedItems(20)...), FaultSpec{Seed: 1})
	out := chaosDrainAll(src)
	if len(out) != 20 {
		t.Fatalf("zero-fault spec delivered %d of 20 items", len(out))
	}
	for i, it := range out {
		if it.Int("n") != int64(i) {
			t.Fatalf("item %d = %v, order must be preserved", i, it)
		}
	}
	s := src.Stats()
	if s.Emitted != 20 || s.Dropped+s.Duplicated+s.Delayed+s.Stalled != 0 {
		t.Errorf("stats = %+v, want 20 clean emissions", s)
	}
}

func TestChaosSourceDeterministic(t *testing.T) {
	spec := FaultSpec{Seed: 42, DropProb: 0.2, DupProb: 0.15, DelayProb: 0.2, DelayMax: 5}
	run := func() []int64 {
		src := NewChaosSource(NewSliceSource(numberedItems(200)...), spec)
		var seq []int64
		for _, it := range chaosDrainAll(src) {
			seq = append(seq, it.Int("n"))
		}
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("two runs with the same seed differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two runs with the same seed diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed must fault differently.
	spec.Seed = 43
	src := NewChaosSource(NewSliceSource(numberedItems(200)...), spec)
	c := chaosDrainAll(src)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i].Int("n") {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestChaosSourceDrop(t *testing.T) {
	src := NewChaosSource(NewSliceSource(numberedItems(1000)...), FaultSpec{Seed: 7, DropProb: 0.3})
	out := chaosDrainAll(src)
	s := src.Stats()
	if s.Dropped == 0 || len(out)+s.Dropped != 1000 {
		t.Errorf("delivered %d, dropped %d, want them to account for all 1000", len(out), s.Dropped)
	}
	if s.Dropped < 200 || s.Dropped > 400 {
		t.Errorf("dropped %d of 1000 at p=0.3 — sampling broken", s.Dropped)
	}
}

func TestChaosSourceDuplicate(t *testing.T) {
	src := NewChaosSource(NewSliceSource(numberedItems(500)...), FaultSpec{Seed: 7, DupProb: 0.2})
	out := chaosDrainAll(src)
	s := src.Stats()
	if len(out) != 500+s.Duplicated || s.Duplicated == 0 {
		t.Errorf("delivered %d with %d duplicates", len(out), s.Duplicated)
	}
	counts := map[int64]int{}
	for _, it := range out {
		counts[it.Int("n")]++
	}
	twice := 0
	for _, c := range counts {
		if c == 2 {
			twice++
		}
	}
	if twice != s.Duplicated {
		t.Errorf("%d items seen twice, stats say %d duplicated", twice, s.Duplicated)
	}
}

func TestChaosSourceDelayReorders(t *testing.T) {
	src := NewChaosSource(NewSliceSource(numberedItems(300)...), FaultSpec{Seed: 3, DelayProb: 0.3, DelayMax: 10})
	out := chaosDrainAll(src)
	if len(out) != 300 {
		t.Fatalf("delay must not lose items: got %d of 300", len(out))
	}
	inversions := 0
	for i := 1; i < len(out); i++ {
		if out[i].Int("n") < out[i-1].Int("n") {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("DelayProb=0.3 produced a fully ordered stream")
	}
	if src.Stats().Delayed == 0 {
		t.Error("no items recorded as delayed")
	}
}

func TestChaosSourceStallForever(t *testing.T) {
	src := NewChaosSource(NewSliceSource(numberedItems(100)...), FaultSpec{Seed: 1, StallAfter: 30})
	out := chaosDrainAll(src)
	if len(out) != 30 {
		t.Fatalf("dead source delivered %d items, want the 30 pre-stall ones", len(out))
	}
	for i, it := range out {
		if it.Int("n") != int64(i) {
			t.Fatalf("pre-stall item %d = %v", i, it)
		}
	}
	if s := src.Stats(); s.Stalled != 70 {
		t.Errorf("stalled = %d, want the 70 swallowed items", s.Stalled)
	}
}

func TestChaosSourceStallRecovers(t *testing.T) {
	src := NewChaosSource(NewSliceSource(numberedItems(100)...), FaultSpec{Seed: 1, StallAfter: 30, StallFor: 20})
	out := chaosDrainAll(src)
	if len(out) != 100 {
		t.Fatalf("recovering stall delivered %d items, want all 100 (backlog flushed)", len(out))
	}
	// Order must be fully preserved: the backlog floods out before the
	// post-stall items.
	for i, it := range out {
		if it.Int("n") != int64(i) {
			t.Fatalf("item %d = %v after recovery, want order preserved", i, it)
		}
	}
}

func TestChaosSourceStallBeyondEndFlushesBacklog(t *testing.T) {
	// The feed ends while the mediator is still buffering: a recovering
	// mediator (StallFor > 0) reconnects at end of feed and delivers
	// the whole backlog late; nothing is lost.
	src := NewChaosSource(NewSliceSource(numberedItems(50)...), FaultSpec{Seed: 1, StallAfter: 30, StallFor: 1000})
	out := chaosDrainAll(src)
	if len(out) != 50 {
		t.Fatalf("stall past end of feed delivered %d items, want all 50", len(out))
	}
	for i, it := range out {
		if it.Int("n") != int64(i) {
			t.Fatalf("item %d = %v, want order preserved", i, it)
		}
	}
}

func TestChaosProcessorInjectsErrors(t *testing.T) {
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	cp := NewChaosProcessor(pass, FaultSpec{Seed: 5, ErrProb: 0.25})
	failures := 0
	for i := 0; i < 400; i++ {
		if _, err := cp.Process(Item{"n": i}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v must match ErrInjected", err)
			}
			failures++
		}
	}
	if failures == 0 || failures != cp.Stats().Errors {
		t.Errorf("failures = %d, stats = %+v", failures, cp.Stats())
	}
	if failures < 50 || failures > 150 {
		t.Errorf("injected %d of 400 at p=0.25 — sampling broken", failures)
	}
}

// The canonical composition: a flaky processor under SkipItem
// supervision dead-letters the injected faults and the topology
// completes.
func TestChaosProcessorUnderSupervision(t *testing.T) {
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	cp := NewChaosProcessor(pass, FaultSpec{Seed: 11, ErrProb: 0.2})
	top, out := buildLine(t, "flaky", numberedItems(200), cp)
	if err := top.Supervise("flaky", SupervisionPolicy{Strategy: SkipItem}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, skip-item must absorb injected faults", err)
	}
	injected := cp.Stats().Errors
	if injected == 0 {
		t.Fatal("no faults injected")
	}
	if out.Len()+injected != 200 {
		t.Errorf("delivered %d + dead-lettered %d != 200", out.Len(), injected)
	}
	if got := top.Health()["flaky"].Skipped; got != injected {
		t.Errorf("skipped = %d, want %d", got, injected)
	}
}

// Under Restart supervision an injected fault is transient: the retry
// redraws the sample, so items eventually pass and none are lost.
func TestChaosProcessorRestartRetriesThrough(t *testing.T) {
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	cp := NewChaosProcessor(pass, FaultSpec{Seed: 11, ErrProb: 0.3})
	top, out := buildLine(t, "flaky", numberedItems(100), cp)
	if err := top.Supervise("flaky", SupervisionPolicy{
		Strategy: Restart,
		Retry:    RetryPolicy{MaxAttempts: 20, BaseDelay: 1, MaxDelay: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if out.Len() != 100 {
		t.Errorf("delivered %d of 100, restart must not lose items", out.Len())
	}
	if top.Health()["flaky"].Restarts == 0 {
		t.Error("no restarts recorded despite injected faults")
	}
}
