package streams_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/insight-dublin/insight/streams"
)

// A data-flow graph declared in the XML language of the Streams
// framework (Section 3 of the paper), with the standard processor
// library, run over an in-memory stream.
func Example() {
	const flowDefinition = `
<application>
  <queue id="clean" capacity="16"/>
  <process id="ingest" input="raw" output="clean">
    <processor class="drop-missing" key="flow"/>
    <processor class="rename" from="flow" to="vehiclesPerHour"/>
    <processor class="set" key="city" value="dublin"/>
  </process>
  <process id="deliver" input="clean" output="out"/>
</application>`

	reg := streams.NewRegistry()
	if err := streams.RegisterStdProcessors(reg); err != nil {
		log.Fatal(err)
	}
	top := streams.NewTopology()
	if err := top.AddStream("raw", streams.NewSliceSource(
		streams.Item{"sensor": "scats0001", "flow": 850.0},
		streams.Item{"sensor": "scats0002"}, // missing reading: dropped
		streams.Item{"sensor": "scats0003", "flow": 320.0},
	)); err != nil {
		log.Fatal(err)
	}
	sink := streams.NewCollectorSink()
	if err := top.AddSink("out", sink); err != nil {
		log.Fatal(err)
	}
	if err := streams.LoadXML(top, reg, strings.NewReader(flowDefinition)); err != nil {
		log.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	for _, it := range sink.Items() {
		fmt.Printf("%s: %.0f veh/h (%s)\n",
			it.String("sensor"), it.Float("vehiclesPerHour"), it.String("city"))
	}
	// Output:
	// scats0001: 850 veh/h (dublin)
	// scats0003: 320 veh/h (dublin)
}
