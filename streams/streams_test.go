package streams

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestItemAccessors(t *testing.T) {
	it := Item{"s": "x", "f": 1.5, "i": int64(7), "n": 3, "b": true}
	if it.String("s") != "x" || it.String("missing") != "" {
		t.Error("String accessor")
	}
	if it.Float("f") != 1.5 || it.Float("i") != 7 || it.Float("n") != 3 {
		t.Error("Float accessor")
	}
	if it.Int("i") != 7 || it.Int("f") != 1 || it.Int("n") != 3 {
		t.Error("Int accessor")
	}
	if !it.Bool("b") || it.Bool("s") {
		t.Error("Bool accessor")
	}
	c := it.Clone()
	c["s"] = "y"
	if it.String("s") != "x" {
		t.Error("Clone must not alias")
	}
}

func TestItemNumericCoercions(t *testing.T) {
	cases := []struct {
		name      string
		value     any
		wantFloat float64
		wantInt   int64
	}{
		{"float64", float64(2.5), 2.5, 2},
		{"float32", float32(1.5), 1.5, 1},
		{"int", int(-4), -4, -4},
		{"int32", int32(9), 9, 9},
		{"int64", int64(12), 12, 12},
		{"uint", uint(7), 7, 7},
		{"string", "nope", 0, 0},
		{"bool", true, 0, 0},
		{"missing", nil, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			it := Item{}
			if c.value != nil {
				it["v"] = c.value
			}
			if got := it.Float("v"); got != c.wantFloat {
				t.Errorf("Float(%T %v) = %v, want %v", c.value, c.value, got, c.wantFloat)
			}
			if got := it.Int("v"); got != c.wantInt {
				t.Errorf("Int(%T %v) = %v, want %v", c.value, c.value, got, c.wantInt)
			}
		})
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource(Item{"n": 1}, Item{"n": 2})
	it1, ok1 := s.Read()
	it2, ok2 := s.Read()
	_, ok3 := s.Read()
	if !ok1 || !ok2 || ok3 {
		t.Fatal("SliceSource read sequence broken")
	}
	if it1.Int("n") != 1 || it2.Int("n") != 2 {
		t.Error("items out of order")
	}
}

func TestQueueBasics(t *testing.T) {
	q := NewQueue(2)
	if err := q.Write(Item{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d", q.Len())
	}
	it, ok := q.Read()
	if !ok || it.Int("n") != 1 {
		t.Error("Read")
	}
	q.Close()
	q.Close() // idempotent
	if _, ok := q.Read(); ok {
		t.Error("closed drained queue must report !ok")
	}
	if err := q.Write(Item{}); err == nil {
		t.Error("write on closed queue must error")
	}
	if err := q.WriteContext(context.Background(), Item{}); err == nil {
		t.Error("WriteContext on closed queue must error")
	}
}

func TestQueueContextOps(t *testing.T) {
	q := NewQueue(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := q.ReadContext(ctx); ok {
		t.Error("cancelled ReadContext must report !ok")
	}
	if err := q.Write(Item{"n": 1}); err != nil {
		t.Fatal(err)
	}
	// Queue full; cancelled write must not block.
	if err := q.WriteContext(ctx, Item{"n": 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("WriteContext on full queue with cancelled ctx = %v", err)
	}
}

func TestCollectorSink(t *testing.T) {
	c := NewCollectorSink()
	for i := 0; i < 3; i++ {
		if err := c.Write(Item{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 || len(c.Items()) != 3 {
		t.Error("collector miscounts")
	}
	if (DiscardSink{}).Write(Item{}) != nil {
		t.Error("DiscardSink must accept everything")
	}
}

func TestTopologyLinearPipeline(t *testing.T) {
	top := NewTopology()
	src := NewSliceSource(
		Item{"v": 1.0}, Item{"v": -2.0}, Item{"v": 3.0}, Item{"v": -4.0},
	)
	if err := top.AddStream("in", src); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddQueue("mid", 8); err != nil {
		t.Fatal(err)
	}
	out := NewCollectorSink()
	if err := top.AddSink("out", out); err != nil {
		t.Fatal(err)
	}

	dropNegative := ProcessorFunc(func(it Item) (Item, error) {
		if it.Float("v") < 0 {
			return nil, nil
		}
		return it, nil
	})
	double := ProcessorFunc(func(it Item) (Item, error) {
		it = it.Clone()
		it["v"] = it.Float("v") * 2
		return it, nil
	})
	if err := top.AddProcess("filter", "in", "mid", dropNegative); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("scale", "mid", "out", double); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	items := out.Items()
	if len(items) != 2 {
		t.Fatalf("collected %d items, want 2", len(items))
	}
	sum := items[0].Float("v") + items[1].Float("v")
	if sum != 8 { // (1+3)*2
		t.Errorf("sum = %v, want 8", sum)
	}
}

func TestTopologyFanInFanOut(t *testing.T) {
	// Two input streams fan into one queue; two processes read the
	// queue and write to separate collectors (work sharing).
	top := NewTopology()
	mk := func(base int) []Item {
		items := make([]Item, 10)
		for i := range items {
			items[i] = Item{"n": base + i}
		}
		return items
	}
	if err := top.AddStream("a", NewSliceSource(mk(0)...)); err != nil {
		t.Fatal(err)
	}
	if err := top.AddStream("b", NewSliceSource(mk(100)...)); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddQueue("merge", 4); err != nil {
		t.Fatal(err)
	}
	out := NewCollectorSink()
	if err := top.AddSink("out", out); err != nil {
		t.Fatal(err)
	}
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	if err := top.AddProcess("inA", "a", "merge", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("inB", "b", "merge", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("w1", "merge", "out", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("w2", "merge", "out", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 20 {
		t.Errorf("collected %d, want all 20 (queue must close after both producers)", out.Len())
	}
}

func TestTopologyProcessorError(t *testing.T) {
	top := NewTopology()
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{"n": i}
	}
	if err := top.AddStream("in", NewSliceSource(items...)); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddQueue("mid", 1); err != nil {
		t.Fatal(err)
	}
	boom := ProcessorFunc(func(it Item) (Item, error) {
		if it.Int("n") >= 3 {
			return nil, fmt.Errorf("boom at %d", it.Int("n"))
		}
		return it, nil
	})
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	if err := top.AddProcess("feed", "in", "mid", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("explode", "mid", "", boom); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- top.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Errorf("Run error = %v, want the processor error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("topology deadlocked after processor error")
	}
}

func TestTopologyContextCancellation(t *testing.T) {
	top := NewTopology()
	// An infinite source.
	inf := sourceFunc(func() (Item, bool) { return Item{"n": 1}, true })
	if err := top.AddStream("in", inf); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("p", "in", "", ProcessorFunc(func(it Item) (Item, error) {
		return it, nil
	})); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- top.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not stop the topology")
	}
}

type sourceFunc func() (Item, bool)

func (f sourceFunc) Read() (Item, bool) { return f() }

func TestTopologyValidation(t *testing.T) {
	top := NewTopology()
	if err := top.AddStream("in", NewSliceSource()); err != nil {
		t.Fatal(err)
	}
	if err := top.AddStream("in", NewSliceSource()); err == nil {
		t.Error("duplicate stream must error")
	}
	if _, err := top.AddQueue("q", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddQueue("q", 1); err == nil {
		t.Error("duplicate queue must error")
	}
	if err := top.AddSink("s", NewCollectorSink()); err != nil {
		t.Fatal(err)
	}
	if err := top.AddSink("s", NewCollectorSink()); err == nil {
		t.Error("duplicate sink must error")
	}
	if err := top.AddProcess("p", "ghost", ""); err == nil {
		t.Error("unknown input must error")
	}
	if err := top.AddProcess("p", "in", "ghost"); err == nil {
		t.Error("unknown output must error")
	}
	if err := top.RegisterService("svc", 42); err != nil {
		t.Fatal(err)
	}
	if err := top.RegisterService("svc", 43); err == nil {
		t.Error("duplicate service must error")
	}
	if svc, ok := top.LookupService("svc"); !ok || svc.(int) != 42 {
		t.Error("LookupService")
	}
	if _, ok := top.LookupService("nope"); ok {
		t.Error("unknown service lookup must fail")
	}
	if q, ok := top.Queue("q"); !ok || q == nil {
		t.Error("Queue lookup")
	}
}

func TestLoadXML(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterProcessor("scale", func(params map[string]string) (Processor, error) {
		factor := 1.0
		if params["factor"] == "3" {
			factor = 3
		}
		return ProcessorFunc(func(it Item) (Item, error) {
			it = it.Clone()
			it["v"] = it.Float("v") * factor
			return it, nil
		}), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterService("const", func(params map[string]string) (Service, error) {
		return params["value"], nil
	}); err != nil {
		t.Fatal(err)
	}

	const def = `
<application>
  <queue id="mid" capacity="4"/>
  <process id="p1" input="in" output="mid">
    <processor class="scale" factor="3"/>
  </process>
  <process id="p2" input="mid" output="out"/>
  <service id="cfg" class="const" value="hello"/>
</application>`

	top := NewTopology()
	if err := top.AddStream("in", NewSliceSource(Item{"v": 2.0})); err != nil {
		t.Fatal(err)
	}
	out := NewCollectorSink()
	if err := top.AddSink("out", out); err != nil {
		t.Fatal(err)
	}
	if err := LoadXML(top, reg, strings.NewReader(def)); err != nil {
		t.Fatal(err)
	}
	if svc, ok := top.LookupService("cfg"); !ok || svc.(string) != "hello" {
		t.Error("service not loaded")
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	items := out.Items()
	if len(items) != 1 || items[0].Float("v") != 6 {
		t.Errorf("items = %v", items)
	}
}

func TestLoadXMLErrors(t *testing.T) {
	reg := NewRegistry()
	top := NewTopology()
	cases := []struct {
		name string
		def  string
	}{
		{"malformed", `<application`},
		{"queue no id", `<application><queue/></application>`},
		{"unknown processor", `<application><process id="p" input="x"><processor class="nope"/></process></application>`},
		{"processor no class", `<application><process id="p" input="x"><processor/></process></application>`},
		{"process no id", `<application><process input="x"/></application>`},
		{"unknown service", `<application><service id="s" class="nope"/></application>`},
		{"service no id", `<application><service class="nope"/></application>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := LoadXML(top, reg, strings.NewReader(c.def)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRegistryDuplicates(t *testing.T) {
	reg := NewRegistry()
	f := func(map[string]string) (Processor, error) { return nil, nil }
	if err := reg.RegisterProcessor("x", f); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterProcessor("x", f); err == nil {
		t.Error("duplicate processor class must error")
	}
	sf := func(map[string]string) (Service, error) { return nil, nil }
	if err := reg.RegisterService("x", sf); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterService("x", sf); err == nil {
		t.Error("duplicate service class must error")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(16)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Write(Item{"n": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	count := 0
	for {
		_, ok := q.Read()
		if !ok {
			break
		}
		count++
	}
	if count != producers*perProducer {
		t.Errorf("consumed %d, want %d", count, producers*perProducer)
	}
}
