package wal

import (
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to every byte-level entry point
// of the package: the record payload decoder, the segment reader and
// Open's torn-tail recovery. The input is interpreted as the frame
// bytes of a single-segment log. Invariants: nothing panics, every
// record the reader returns re-verifies its CRC against the raw bytes,
// and reopening the fuzzed log always yields an appendable log whose
// frontier covers exactly the valid frame prefix.
func FuzzWALDecode(f *testing.F) {
	seed := EncodeBatch(nil, testBatch(6, 300))
	frame := make([]byte, frameHeader+len(seed))
	putU32(frame, uint32(len(seed)))
	putU32(frame[4:], crc32.Checksum(seed, castagnoli))
	copy(frame[frameHeader:], seed)
	two := append(append([]byte(nil), frame...), frame...)
	f.Add([]byte(nil))
	f.Add(append([]byte(nil), frame...)) // one valid frame
	f.Add(two)                           // two valid frames
	f.Add(two[:len(two)-3])              // torn tail
	flipped := append([]byte(nil), frame...)
	flipped[frameHeader+1] ^= 0x20 // payload corruption
	f.Add(flipped)
	lenbomb := append([]byte(nil), frame...)
	lenbomb[3] = 0xff // impossible frame length
	f.Add(lenbomb)
	f.Add(seed) // bare payload without framing

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Payload decoder: error or valid batch, never a panic.
		if b, err := DecodeBatch(data); err == nil {
			if err := b.Check(); err != nil {
				t.Fatalf("DecodeBatch accepted a batch failing Check: %v", err)
			}
		}

		// 2. Reader over a segment whose frame bytes are the input.
		dir := t.TempDir()
		seg := filepath.Join(dir, segmentName(0))
		content := make([]byte, 0, segHeader+len(data))
		content = append(content, segMagic...)
		content = append(content, make([]byte, 8)...) // base 0
		content = append(content, data...)
		if err := os.WriteFile(seg, content, 0o644); err != nil {
			t.Fatalf("write segment: %v", err)
		}
		r, err := OpenReader(dir, 0)
		if err != nil {
			t.Fatalf("OpenReader on fuzzed segment: %v", err)
		}
		read := int64(0)
		for {
			p, start, end, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("single-segment reader returned corruption error %v (should be a torn tail)", err)
			}
			if start != read || end != start+frameHeader+int64(len(p)) {
				t.Fatalf("offsets [%d,%d) inconsistent, %d read so far", start, end, read)
			}
			// The record must re-verify against the raw input.
			raw := data[start : start+frameHeader+int64(len(p))]
			if crc32.Checksum(p, castagnoli) != leUint32(raw[4:]) {
				t.Fatalf("reader returned a record with bad CRC at offset %d", start)
			}
			read = end
		}
		if read+r.Torn() != int64(len(data)) {
			t.Fatalf("read %d + torn %d != %d input bytes", read, r.Torn(), len(data))
		}

		// 3. Open recovers: the torn tail goes away, appends work.
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		if l.Frontier() != read {
			t.Fatalf("recovered frontier %d, want valid prefix %d", l.Frontier(), read)
		}
		if _, _, err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}
