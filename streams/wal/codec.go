package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/insight-dublin/insight/streams"
)

// Record payload codec. A WAL record carries one transport batch
// (streams.Batch) in a compact binary form that mirrors the PR 5
// columnar layout: occurrence/arrival times as zig-zag delta varints
// (arrival-ordered rows make the deltas tiny), entity keys through the
// batch's key dictionary, and one typed column blob per attribute
// column, with categorical columns keeping their dictionary encoding.
// Decoding rebuilds an equivalent unpooled batch; round-tripping a
// batch through EncodeBatch/DecodeBatch preserves every row bit for
// bit, which is what makes WAL replay feed the engines the exact
// stream the original run consumed.
//
// The append-style primitives (AppendUvarint, AppendString, ...) and
// the sticky-error Decoder are exported because the checkpoint writer
// (package insight) encodes engine snapshots with the same vocabulary.

// batchFormat is the record payload version byte.
const batchFormat = 1

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag varint form.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendFloat appends a float64 as its IEEE 754 bits, little-endian.
func AppendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Decoder reads back what the Append helpers wrote. Errors are sticky:
// the first truncation or bound violation poisons the decoder, every
// later read returns zero values, and Err reports the failure — so
// decode routines can run straight-line and check once at the end.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of undecoded bytes.
func (d *Decoder) Len() int { return len(d.b) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("wal: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("wal: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Count reads a uvarint bounded by the remaining payload size — the
// defensive form for element counts, so corrupt input cannot demand a
// multi-gigabyte allocation before the per-element reads fail.
func (d *Decoder) Count() int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.Len()) {
		d.fail("wal: count %d exceeds %d remaining payload bytes", v, d.Len())
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Count()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// Float reads a float64.
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Len() < 8 {
		d.fail("wal: truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// Bytes reads n raw bytes as a copy that does not alias the payload.
func (d *Decoder) Bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Len() {
		d.fail("wal: %d raw bytes requested with %d remaining at offset %d", n, d.Len(), d.off)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+n])
	d.off += n
	return out
}

// Skip discards n bytes.
func (d *Decoder) Skip(n int) {
	if d.err != nil {
		return
	}
	if n < 0 || n > d.Len() {
		d.fail("wal: cannot skip %d bytes with %d remaining at offset %d", n, d.Len(), d.off)
		return
	}
	d.off += n
}

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Len() < 1 {
		d.fail("wal: truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}

// batch payload flag bits.
const (
	flagArrivals = 1 << 0
	flagKeyDict  = 1 << 1
)

// EncodeBatch appends the record payload for b to dst and returns the
// extended slice. The batch is read, not consumed.
func EncodeBatch(dst []byte, b *streams.Batch) []byte {
	dst = append(dst, batchFormat)
	dst = AppendString(dst, b.Type)
	dst = AppendString(dst, b.Source)
	n := b.Len()
	dst = AppendUvarint(dst, uint64(n))
	flags := byte(0)
	if b.Arrivals != nil {
		flags |= flagArrivals
	}
	if b.KIdx != nil {
		flags |= flagKeyDict
	}
	dst = append(dst, flags)
	dst = appendDeltas(dst, b.Times)
	if b.Arrivals != nil {
		dst = appendDeltas(dst, b.Arrivals)
	}
	if b.KIdx != nil {
		dst = AppendUvarint(dst, uint64(len(b.KDict)))
		for _, s := range b.KDict {
			dst = AppendString(dst, s)
		}
		for _, id := range b.KIdx {
			dst = AppendUvarint(dst, uint64(id))
		}
	} else {
		for _, k := range b.Keys {
			dst = AppendString(dst, k)
		}
	}
	dst = AppendUvarint(dst, uint64(len(b.Cols)))
	for ci := range b.Cols {
		c := &b.Cols[ci]
		dst = AppendString(dst, c.Name)
		dst = append(dst, byte(c.Kind))
		switch c.Kind {
		case streams.ColFloat:
			for _, v := range c.F {
				dst = AppendFloat(dst, v)
			}
		case streams.ColInt:
			dst = appendDeltas(dst, c.I)
		case streams.ColBool:
			for _, v := range c.B {
				dst = AppendBool(dst, v)
			}
		case streams.ColStr:
			dst = AppendUvarint(dst, uint64(len(c.Dict)))
			for _, s := range c.Dict {
				dst = AppendString(dst, s)
			}
			for _, id := range c.SIdx {
				dst = AppendUvarint(dst, uint64(id))
			}
		}
	}
	return dst
}

// appendDeltas writes an int64 column as first value + zig-zag deltas.
func appendDeltas(dst []byte, vs []int64) []byte {
	prev := int64(0)
	for _, v := range vs {
		dst = AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

// DecodeBatch rebuilds the batch of a record payload. The returned
// batch is unpooled (Release only marks it dead); every structural
// invariant — row counts, dictionary bounds, column kinds — is
// validated, so arbitrary payload bytes yield an error, never a panic
// or a malformed batch.
func DecodeBatch(payload []byte) (*streams.Batch, error) {
	d := NewDecoder(payload)
	if d.Len() < 1 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	if v := payload[0]; v != batchFormat {
		return nil, fmt.Errorf("wal: unknown record format %d", v)
	}
	d.off = 1
	b := streams.NewBatch(d.String(), d.String())
	n := d.Count()
	if d.err != nil {
		return nil, d.err
	}
	flags := byte(0)
	if d.Len() >= 1 {
		flags = d.b[d.off]
		d.off++
	} else {
		d.fail("wal: truncated batch flags")
	}
	b.Times = readDeltas(d, n)
	if flags&flagArrivals != 0 {
		b.Arrivals = readDeltas(d, n)
	}
	if flags&flagKeyDict != 0 {
		nd := d.Count()
		dict := make([]string, 0, nd)
		for i := 0; i < nd; i++ {
			dict = append(dict, d.String())
		}
		idx := make([]uint32, 0, n)
		keys := make([]string, 0, n)
		for i := 0; i < n; i++ {
			id := d.Uvarint()
			if d.err == nil && id >= uint64(len(dict)) {
				d.fail("wal: key index %d outside dictionary of %d", id, len(dict))
			}
			if d.err != nil {
				return nil, d.err
			}
			idx = append(idx, uint32(id))
			keys = append(keys, dict[id])
		}
		b.KDict, b.KIdx, b.Keys = dict, idx, keys
	} else {
		keys := make([]string, 0, n)
		for i := 0; i < n; i++ {
			keys = append(keys, d.String())
		}
		b.Keys = keys
	}
	nc := d.Count()
	if d.err != nil {
		return nil, d.err
	}
	for ci := 0; ci < nc; ci++ {
		name := d.String()
		if d.err == nil && b.Col(name) != nil {
			return nil, fmt.Errorf("wal: duplicate column %q in record payload", name)
		}
		if d.Len() < 1 {
			d.fail("wal: truncated column kind")
			return nil, d.err
		}
		kind := streams.ColKind(d.b[d.off])
		d.off++
		var col *streams.Col
		switch kind {
		case streams.ColFloat:
			col = b.FloatCol(name)
			col.F = make([]float64, 0, n)
			for i := 0; i < n; i++ {
				col.F = append(col.F, d.Float())
			}
		case streams.ColInt:
			col = b.IntCol(name)
			col.I = readDeltas(d, n)
		case streams.ColBool:
			col = b.BoolCol(name)
			col.B = make([]bool, 0, n)
			for i := 0; i < n; i++ {
				col.B = append(col.B, d.Bool())
			}
		case streams.ColStr:
			col = b.StrCol(name)
			nd := d.Count()
			col.Dict = make([]string, 0, nd)
			for i := 0; i < nd; i++ {
				col.Dict = append(col.Dict, d.String())
			}
			col.SIdx = make([]uint32, 0, n)
			for i := 0; i < n; i++ {
				id := d.Uvarint()
				if d.err == nil && id >= uint64(len(col.Dict)) {
					d.fail("wal: string index %d outside dictionary of %d", id, len(col.Dict))
				}
				col.SIdx = append(col.SIdx, uint32(id))
			}
		default:
			return nil, fmt.Errorf("wal: unknown column kind %d", kind)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after batch payload", d.Len())
	}
	if err := b.Check(); err != nil {
		return nil, err
	}
	return b, nil
}

// readDeltas reads n delta-encoded int64 values.
func readDeltas(d *Decoder, n int) []int64 {
	out := make([]int64, 0, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += d.Varint()
		out = append(out, prev)
	}
	return out
}
