// Package wal is the durable SDE log of the streams backbone: a
// segmented, append-only file format carrying length- and
// CRC32C-framed record payloads (columnar transport batches, encoded
// by codec.go).
//
// Layout. A log directory holds segment files named
// wal-<base>.seg, where <base> is the logical offset of the segment's
// first record. Logical offsets count frame bytes across the whole
// log — segment headers excluded — so a record's address is stable
// under segment rotation and front truncation. Each segment starts
// with a 16-byte header (magic + base offset) followed by frames:
//
//	[4B length LE][4B CRC32C(payload) LE][payload]
//
// Torn tails. A crash mid-append leaves a partial frame at the end of
// the last segment. Open detects it (short frame, impossible length,
// or CRC mismatch), truncates the file back to the last valid frame
// and reports the discarded bytes — the record was never acknowledged,
// so the writer re-appends it after recovery. The same scan in the
// Reader lets replay stop cleanly at a torn tail instead of erroring;
// corruption strictly inside the log (before another valid segment)
// is not recoverable and is surfaced as an error with its offset.
//
// Durability policy. SyncAlways (the default) fsyncs after every
// append, which is what makes "consumed implies durable" hold for the
// pipeline's checkpoint offsets; SyncRotate amortizes the fsync to
// segment boundaries and SyncNever leaves flushing to the OS — both
// trade the crash-equivalence guarantee for throughput and are meant
// for benchmarks.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SyncPolicy selects when the log fsyncs appended frames.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (default): an acknowledged
	// record is durable.
	SyncAlways SyncPolicy = iota
	// SyncRotate fsyncs only when a segment fills up or the log closes.
	SyncRotate
	// SyncNever never fsyncs explicitly.
	SyncNever
)

// ErrCrashPoint is returned by Append (and by the checkpoint writer in
// package insight) when an armed crash-injection failpoint fires; the
// fault-injection harness matches it with errors.Is to distinguish a
// simulated kill from a real I/O failure.
var ErrCrashPoint = errors.New("wal: injected crash point")

// Failpoint simulates a kill during an append. It is consulted before
// each frame write with the record's start offset and full frame
// length; returning kill=true makes Append write only tear bytes of
// the frame (a torn tail, 0 <= tear < frame length), sync, and fail
// with ErrCrashPoint. The log is dead afterwards — every later Append
// fails — which models the process dying mid-write.
type Failpoint func(start int64, frameLen int) (tear int, kill bool)

const (
	segMagic    = "INSWAL1\n"
	segHeader   = 16
	frameHeader = 8
	// MaxRecord bounds a record payload; frame lengths beyond it are
	// treated as corruption, so a flipped length byte cannot demand a
	// multi-gigabyte read.
	MaxRecord = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one holds
	// at least this many frame bytes. Default 1 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncAlways.
	Sync SyncPolicy
	// Failpoint, when non-nil, arms crash injection (tests and the
	// chaos harness only).
	Failpoint Failpoint
}

func (o Options) normalized() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// Log is a single-writer append handle over a log directory: the
// pipeline serializes appends through one process by design
// (consumption order must equal append order). A mutex still guards
// the handle so maintenance calls from other goroutines — the
// checkpoint coordinator's TruncateFront and Frontier reads — are safe
// against a concurrent Append.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	active    *os.File // current segment
	base      int64    // logical offset of active's first record
	size      int64    // frame bytes in active
	lastStart int64    // logical offset of the most recent record
	torn      int64    // bytes discarded from the tail at Open
	dead      bool     // a failpoint fired; the "process" is gone
}

type segmentInfo struct {
	path   string
	base   int64
	frames int64 // frame bytes (file size minus header)
}

func segmentName(base int64) string {
	return fmt.Sprintf("wal-%020d.seg", base)
}

// listSegments returns the log's segments sorted by base offset,
// validating names against headers and base contiguity.
func listSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, ent := range ents {
		name := ent.Name()
		var base int64
		if _, err := fmt.Sscanf(name, "wal-%d.seg", &base); err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, err
		}
		if info.Size() < segHeader {
			// A crash between create and header write leaves a runt
			// segment; it carries no records.
			segs = append(segs, segmentInfo{path: filepath.Join(dir, name), base: base, frames: 0})
			continue
		}
		segs = append(segs, segmentInfo{
			path:   filepath.Join(dir, name),
			base:   base,
			frames: info.Size() - segHeader,
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	for i := 1; i < len(segs); i++ {
		if want := segs[i-1].base + segs[i-1].frames; segs[i].base != want {
			return nil, fmt.Errorf("wal: segment %s starts at offset %d, want %d (gap or overlap)",
				filepath.Base(segs[i].path), segs[i].base, want)
		}
	}
	return segs, nil
}

// checkHeader validates a segment file's magic and base offset.
func checkHeader(f *os.File, base int64) error {
	var hdr [segHeader]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return fmt.Errorf("wal: bad segment magic %q", hdr[:8])
	}
	if got := int64(leUint64(hdr[8:])); got != base {
		return fmt.Errorf("wal: segment header base %d does not match name %d", got, base)
	}
	return nil
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// scanFrames walks the frames of one segment's data and returns the
// number of leading bytes forming valid frames, plus the start offset
// (within data) of the last valid frame, or -1 if none.
func scanFrames(data []byte) (valid int64, lastStart int64) {
	off, lastStart := int64(0), int64(-1)
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			return off, lastStart
		}
		n := int64(leUint32(rest))
		if n > MaxRecord || frameHeader+n > int64(len(rest)) {
			return off, lastStart
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != leUint32(rest[4:]) {
			return off, lastStart
		}
		lastStart = off
		off += frameHeader + n
	}
}

// Open opens (creating if needed) the log in dir, truncating any torn
// tail left by a crash. The discarded byte count is available via
// Torn.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.normalized()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, lastStart: -1}
	if len(segs) == 0 {
		if err := l.openSegmentLocked(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	if last.frames == 0 && len(segs) > 1 && segs[len(segs)-2].frames == 0 {
		return nil, fmt.Errorf("wal: multiple empty tail segments in %s", dir)
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return nil, closeJoin(f, err)
	}
	if info.Size() < segHeader {
		// Runt segment: rewrite the header in place.
		if err := writeHeader(f, last.base); err != nil {
			return nil, closeJoin(f, err)
		}
		l.active, l.base, l.size = f, last.base, 0
		l.torn = info.Size() // partial header counts as discarded tail
		return l, nil
	}
	if err := checkHeader(f, last.base); err != nil {
		return nil, closeJoin(f, err)
	}
	data := make([]byte, last.frames)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, closeJoin(f, err)
	}
	valid, lastFrame := scanFrames(data)
	if torn := last.frames - valid; torn > 0 {
		if err := f.Truncate(segHeader + valid); err != nil {
			return nil, closeJoin(f, err)
		}
		if err := f.Sync(); err != nil {
			return nil, closeJoin(f, err)
		}
		l.torn = torn
	}
	if _, err := f.Seek(segHeader+valid, io.SeekStart); err != nil {
		return nil, closeJoin(f, err)
	}
	l.active, l.base, l.size = f, last.base, valid
	if lastFrame >= 0 {
		l.lastStart = last.base + lastFrame
	} else if len(segs) > 1 {
		// The last segment is empty; the previous one necessarily ends
		// with a valid frame (it was fully scanned when written).
		l.lastStart = last.base - 1 // position unknown; only ordering matters
	}
	return l, nil
}

func closeJoin(f *os.File, err error) error {
	return errors.Join(err, f.Close())
}

func writeHeader(f *os.File, base int64) error {
	var hdr [segHeader]byte
	copy(hdr[:8], segMagic)
	for i := 0; i < 8; i++ {
		hdr[8+i] = byte(uint64(base) >> (8 * i))
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	if _, err := f.Seek(segHeader, io.SeekStart); err != nil {
		return err
	}
	return f.Sync()
}

// openSegmentLocked creates and activates the segment starting at base.
func (l *Log) openSegmentLocked(base int64) error {
	path := filepath.Join(l.dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := writeHeader(f, base); err != nil {
		return closeJoin(f, err)
	}
	l.active, l.base, l.size = f, base, 0
	return nil
}

// Frontier returns the logical offset the next record will start at —
// equivalently, the end offset of the last durable record.
func (l *Log) Frontier() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + l.size
}

// LastStart returns the logical start offset of the most recent
// record, or -1 when the log is empty.
func (l *Log) LastStart() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastStart
}

// Torn returns the number of torn-tail bytes Open discarded.
func (l *Log) Torn() int64 { return l.torn }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir } //lint:allow lockguard dir is immutable after Open

// Append frames payload, writes it to the active segment and returns
// the record's logical [start, end) offsets. With SyncAlways the
// record is durable when Append returns.
func (l *Log) Append(payload []byte) (start, end int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, 0, fmt.Errorf("wal: append after crash point: %w", ErrCrashPoint)
	}
	if len(payload) > MaxRecord {
		return 0, 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, 0, err
		}
	}
	frame := make([]byte, frameHeader+len(payload))
	putU32(frame, uint32(len(payload)))
	putU32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	start = l.base + l.size
	if fp := l.opts.Failpoint; fp != nil {
		if tear, kill := fp(start, len(frame)); kill {
			if tear > len(frame) {
				tear = len(frame)
			}
			l.dead = true
			if tear > 0 {
				if _, werr := l.active.Write(frame[:tear]); werr != nil {
					return 0, 0, errors.Join(ErrCrashPoint, werr)
				}
			}
			if serr := l.active.Sync(); serr != nil {
				return 0, 0, errors.Join(ErrCrashPoint, serr)
			}
			return 0, 0, fmt.Errorf("wal: killed %d bytes into record at offset %d: %w", tear, start, ErrCrashPoint)
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		return 0, 0, err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.active.Sync(); err != nil {
			return 0, 0, err
		}
	}
	l.size += int64(len(frame))
	l.lastStart = start
	return start, start + int64(len(frame)), nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if l.opts.Sync != SyncNever {
		if err := l.active.Sync(); err != nil {
			return err
		}
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	return l.openSegmentLocked(l.base + l.size)
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return nil
	}
	return l.active.Sync()
}

// Close syncs (unless SyncNever) and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	var err error
	if !l.dead && l.opts.Sync != SyncNever {
		err = l.active.Sync()
	}
	err = errors.Join(err, l.active.Close())
	l.active = nil
	return err
}

// TruncateFront removes whole segments that lie entirely at or below
// offset — the checkpoint GC hook: once every retained checkpoint
// replays from at or past offset, the prefix below it is dead weight.
// The active segment is never removed.
func (l *Log) TruncateFront(offset int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.base == l.base {
			break // never the active segment
		}
		if seg.base+seg.frames > offset {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	return nil
}

// TearTail truncates up to n bytes off the active segment's end
// without crossing the most recent record's start — a post-mortem
// torn-write simulation hook for the chaos harness. It marks the log
// dead; reopen it to continue.
func (l *Log) TearTail(n int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastStart < l.base || l.size == 0 {
		return fmt.Errorf("wal: no record in the active segment to tear")
	}
	if maxTear := l.base + l.size - l.lastStart - 1; n > maxTear {
		n = maxTear
	}
	if n <= 0 {
		return nil
	}
	if err := l.active.Truncate(segHeader + l.size - n); err != nil {
		return err
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.dead = true
	return nil
}

// Reader iterates the records of a log directory from a logical
// offset. It tolerates a torn tail (iteration ends cleanly, with the
// discarded byte count in Torn) but reports mid-log corruption as an
// error carrying the offset.
type Reader struct {
	segs []segmentInfo
	si   int
	data []byte // current segment's frame bytes
	off  int64  // offset within data
	base int64  // logical offset of data[0]
	torn int64
	err  error
	done bool
}

// OpenReader positions a reader at logical offset from. Records
// starting at or after from are returned in order; from must lie on a
// record boundary (or at the log's start/frontier).
func OpenReader(dir string, from int64) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{segs: segs, si: -1}
	if len(segs) == 0 {
		r.done = true
		return r, nil
	}
	if from < segs[0].base {
		return nil, fmt.Errorf("wal: offset %d precedes the log's first retained segment (base %d)", from, segs[0].base)
	}
	// Find the segment containing from.
	si := sort.Search(len(segs), func(i int) bool { return segs[i].base+segs[i].frames > from })
	if si == len(segs) {
		if last := segs[len(segs)-1]; from == last.base+last.frames {
			r.done = true // positioned exactly at the frontier
			return r, nil
		}
		return nil, fmt.Errorf("wal: offset %d beyond the log frontier", from)
	}
	if err := r.load(si); err != nil {
		return nil, err
	}
	r.off = from - r.base
	return r, nil
}

// load reads segment si's frame bytes into memory.
func (r *Reader) load(si int) (err error) {
	seg := r.segs[si]
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() < segHeader {
		// Runt tail segment: no header, no records.
		r.si, r.data, r.base, r.off = si, nil, seg.base, 0
		r.torn += info.Size()
		return nil
	}
	if err := checkHeader(f, seg.base); err != nil {
		return err
	}
	data := make([]byte, info.Size()-segHeader)
	if _, err := io.ReadFull(f, data); err != nil {
		return err
	}
	r.si, r.data, r.base, r.off = si, data, seg.base, 0
	return nil
}

// Torn returns the torn-tail bytes skipped so far.
func (r *Reader) Torn() int64 { return r.torn }

// Next returns the next record's payload and logical [start, end)
// offsets. It returns io.EOF at the end of the log (including after a
// discarded torn tail); any other error means unrecoverable
// corruption. The payload aliases the reader's segment buffer and is
// valid until the next Next call crosses a segment boundary.
func (r *Reader) Next() (payload []byte, start, end int64, err error) {
	if r.err != nil {
		return nil, 0, 0, r.err
	}
	if r.done {
		return nil, 0, 0, io.EOF
	}
	for {
		rest := r.data[r.off:]
		if len(rest) >= frameHeader {
			n := int64(leUint32(rest))
			if n <= MaxRecord && frameHeader+n <= int64(len(rest)) {
				p := rest[frameHeader : frameHeader+n]
				if crc32.Checksum(p, castagnoli) == leUint32(rest[4:]) {
					start = r.base + r.off
					r.off += frameHeader + n
					return p, start, start + frameHeader + n, nil
				}
			}
		}
		// Invalid frame: a torn tail if nothing follows, corruption
		// otherwise.
		if r.si == len(r.segs)-1 {
			if tail := int64(len(r.data)) - r.off; tail > 0 {
				r.torn += tail
			}
			r.done = true
			return nil, 0, 0, io.EOF
		}
		if int64(len(r.data))-r.off > 0 {
			r.err = fmt.Errorf("wal: corrupt frame at offset %d", r.base+r.off)
			return nil, 0, 0, r.err
		}
		if err := r.load(r.si + 1); err != nil {
			r.err = err
			return nil, 0, 0, err
		}
		if r.data == nil { // runt tail segment
			r.done = true
			return nil, 0, 0, io.EOF
		}
	}
}
