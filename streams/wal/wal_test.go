package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/insight-dublin/insight/streams"
)

// testBatch builds a batch exercising every column kind, the key
// dictionary and the arrival column.
func testBatch(n int, seed int64) *streams.Batch {
	b := streams.NewBatch("TestSDE", "stream-a")
	keys := []string{"bus-1", "bus-2", "sensor-9"}
	// Create all columns before taking pointers: column creation appends
	// to b.Cols, which would invalidate earlier *Col pointers.
	b.FloatCol("flow")
	b.IntCol("count")
	b.BoolCol("congested")
	b.StrCol("line")
	f, i, bo, s := b.Col("flow"), b.Col("count"), b.Col("congested"), b.Col("line")
	for r := 0; r < n; r++ {
		t := seed + int64(r)*7
		b.Append(t, t+int64(r%3), keys[r%len(keys)])
		f.AppendFloat(float64(r) * 1.5)
		i.AppendInt(int64(r*r) - 3)
		bo.AppendBool(r%2 == 0)
		s.AppendStr(keys[(r+1)%len(keys)])
	}
	return b
}

func batchEqual(t *testing.T, a, b *streams.Batch) {
	t.Helper()
	if a.Type != b.Type || a.Source != b.Source {
		t.Fatalf("type/source mismatch: %q/%q vs %q/%q", a.Type, a.Source, b.Type, b.Source)
	}
	if !reflect.DeepEqual(a.Times, b.Times) {
		t.Fatalf("times mismatch: %v vs %v", a.Times, b.Times)
	}
	if !reflect.DeepEqual(a.Arrivals, b.Arrivals) {
		t.Fatalf("arrivals mismatch: %v vs %v", a.Arrivals, b.Arrivals)
	}
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Fatalf("keys mismatch: %v vs %v", a.Keys, b.Keys)
	}
	if len(a.Cols) != len(b.Cols) {
		t.Fatalf("column count mismatch: %d vs %d", len(a.Cols), len(b.Cols))
	}
	for ci := range a.Cols {
		ca, cb := &a.Cols[ci], &b.Cols[ci]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			t.Fatalf("column %d mismatch: %s/%d vs %s/%d", ci, ca.Name, ca.Kind, cb.Name, cb.Kind)
		}
		for r := 0; r < a.Len(); r++ {
			if ca.Value(r) != cb.Value(r) {
				t.Fatalf("column %s row %d: %v vs %v", ca.Name, r, ca.Value(r), cb.Value(r))
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := testBatch(50, 1000)
	payload := EncodeBatch(nil, orig)
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	batchEqual(t, orig, got)
}

func TestCodecRoundTripNoArrivalsNoDict(t *testing.T) {
	b := streams.NewBatch("Plain", "s")
	b.Append(10, -1, "k1")
	b.Append(20, -1, "k2")
	// Plain keys, no key dictionary.
	b.KIdx, b.KDict = nil, nil
	payload := EncodeBatch(nil, b)
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	batchEqual(t, b, got)
}

func TestCodecRejectsCorruption(t *testing.T) {
	payload := EncodeBatch(nil, testBatch(20, 500))
	// Every single-byte truncation must fail cleanly, not panic.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeBatch(payload[:cut]); err == nil {
			// A truncation can only be valid if it still forms a
			// complete batch — impossible for a strict prefix here.
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	if _, err := DecodeBatch(append(payload[:len(payload):len(payload)], 0)); err == nil {
		t.Fatalf("trailing byte accepted")
	}
}

func appendN(t *testing.T, l *Log, n int, seed int64) (offsets []int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := EncodeBatch(nil, testBatch(5+i%7, seed+int64(i)*100))
		start, end, err := l.Append(payload)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if end != start+frameHeader+int64(len(payload)) {
			t.Fatalf("Append %d: end %d inconsistent with start %d + frame", i, end, start)
		}
		offsets = append(offsets, start)
	}
	return offsets
}

func readAll(t *testing.T, dir string, from int64) (starts []int64, payloads [][]byte) {
	t.Helper()
	r, err := OpenReader(dir, from)
	if err != nil {
		t.Fatalf("OpenReader(%d): %v", from, err)
	}
	for {
		p, start, _, err := r.Next()
		if errors.Is(err, io.EOF) {
			return starts, payloads
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		starts = append(starts, start)
		payloads = append(payloads, append([]byte(nil), p...))
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 10, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, payloads := readAll(t, dir, 0)
	if !reflect.DeepEqual(starts, offsets) {
		t.Fatalf("read offsets %v, appended %v", starts, offsets)
	}
	for i, p := range payloads {
		b, err := DecodeBatch(p)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		batchEqual(t, testBatch(5+i%7, int64(i)*100), b)
	}
	// Reading from a mid-log record boundary yields the suffix.
	mid := len(offsets) / 2
	starts, _ = readAll(t, dir, offsets[mid])
	if !reflect.DeepEqual(starts, offsets[mid:]) {
		t.Fatalf("suffix read %v, want %v", starts, offsets[mid:])
	}
	// Reading from the frontier yields clean EOF.
	r, err := OpenReader(dir, offsets[len(offsets)-1])
	if err != nil {
		t.Fatalf("OpenReader(last): %v", err)
	}
	if _, _, end, err := r.Next(); err != nil {
		t.Fatalf("Next(last): %v", err)
	} else if _, _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last record: %v, want EOF", err)
	} else if starts, _ := readAll(t, dir, end); len(starts) != 0 {
		t.Fatalf("read from frontier returned %d records", len(starts))
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 20, 0)
	frontier := l.Frontier()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	starts, _ := readAll(t, dir, 0)
	if !reflect.DeepEqual(starts, offsets) {
		t.Fatalf("post-rotation read %v, want %v", starts, offsets)
	}
	// Reopen resumes at the frontier and appends continue the offsets.
	l, err = Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l.Frontier() != frontier {
		t.Fatalf("reopened frontier %d, want %d", l.Frontier(), frontier)
	}
	more := appendN(t, l, 5, 9999)
	if more[0] != frontier {
		t.Fatalf("first post-reopen record at %d, want %d", more[0], frontier)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, _ = readAll(t, dir, 0)
	if got, want := len(starts), len(offsets)+len(more); got != want {
		t.Fatalf("%d records after reopen-append, want %d", got, want)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 5, 0)
	frontier := l.Frontier()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a torn append: garbage frame fragment at the tail.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	garbage := []byte{0xff, 0x13, 0x00, 0x00, 0xde, 0xad}
	if _, err := f.Write(garbage); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close segment: %v", err)
	}
	// A reader tolerates the torn tail.
	starts, _ := readAll(t, dir, 0)
	if !reflect.DeepEqual(starts, offsets) {
		t.Fatalf("read through torn tail %v, want %v", starts, offsets)
	}
	// Open truncates it and reports the byte count.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l.Torn() != int64(len(garbage)) {
		t.Fatalf("Torn() = %d, want %d", l.Torn(), len(garbage))
	}
	if l.Frontier() != frontier {
		t.Fatalf("frontier %d after torn-tail truncate, want %d", l.Frontier(), frontier)
	}
	appendN(t, l, 1, 777)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, _ = readAll(t, dir, 0)
	if len(starts) != len(offsets)+1 {
		t.Fatalf("%d records after truncate+append, want %d", len(starts), len(offsets)+1)
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, l, 20, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d (err %v)", len(segs), err)
	}
	// Flip a payload byte strictly inside a non-last segment.
	victim := segs[1]
	data, err := os.ReadFile(victim.path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[segHeader+frameHeader+2] ^= 0x40
	if err := os.WriteFile(victim.path, data, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
	r, err := OpenReader(dir, 0)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	for {
		_, _, _, err := r.Next()
		if err == nil {
			continue
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("reader reached EOF through mid-log corruption")
		}
		break // corruption error, as required
	}
}

func TestTruncateFront(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 30, 0)
	segs, _ := listSegments(dir)
	if len(segs) < 4 {
		t.Fatalf("need >= 4 segments, got %d", len(segs))
	}
	cut := segs[2].base // everything below the third segment is dead
	if err := l.TruncateFront(cut); err != nil {
		t.Fatalf("TruncateFront: %v", err)
	}
	after, _ := listSegments(dir)
	if len(after) != len(segs)-2 {
		t.Fatalf("%d segments after TruncateFront, want %d", len(after), len(segs)-2)
	}
	// Reading from cut still works; reading below it is rejected.
	starts, _ := readAll(t, dir, cut)
	var want []int64
	for _, o := range offsets {
		if o >= cut {
			want = append(want, o)
		}
	}
	if !reflect.DeepEqual(starts, want) {
		t.Fatalf("post-truncate read %v, want %v", starts, want)
	}
	if _, err := OpenReader(dir, 0); err == nil {
		t.Fatalf("OpenReader(0) succeeded on a front-truncated log")
	}
	// The active segment survives even when fully covered.
	if err := l.TruncateFront(l.Frontier()); err != nil {
		t.Fatalf("TruncateFront(frontier): %v", err)
	}
	if left, _ := listSegments(dir); len(left) == 0 {
		t.Fatalf("TruncateFront removed the active segment")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestFailpointKill(t *testing.T) {
	dir := t.TempDir()
	var armed bool
	opts := Options{Failpoint: func(start int64, frameLen int) (int, bool) {
		if armed {
			return frameLen / 2, true // tear mid-frame
		}
		return 0, false
	}}
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 3, 0)
	frontier := l.Frontier()
	armed = true
	_, _, err = l.Append(EncodeBatch(nil, testBatch(8, 42)))
	if !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("armed Append: %v, want ErrCrashPoint", err)
	}
	// The log is dead: later appends fail too.
	if _, _, err := l.Append([]byte("x")); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("append after kill: %v, want ErrCrashPoint", err)
	}
	_ = l.Close()
	// Recovery: reopen truncates the torn half-frame.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Torn() == 0 {
		t.Fatalf("expected torn bytes after mid-frame kill")
	}
	if l2.Frontier() != frontier {
		t.Fatalf("frontier %d after recovery, want %d", l2.Frontier(), frontier)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, _ := readAll(t, dir, 0)
	if !reflect.DeepEqual(starts, offsets) {
		t.Fatalf("post-recovery read %v, want %v", starts, offsets)
	}
}

func TestTearTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 4, 0)
	last := l.LastStart()
	if last != offsets[3] {
		t.Fatalf("LastStart %d, want %d", last, offsets[3])
	}
	if err := l.TearTail(10); err != nil {
		t.Fatalf("TearTail: %v", err)
	}
	_ = l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Torn() == 0 {
		t.Fatalf("expected torn bytes after TearTail")
	}
	// The torn record is gone; the prefix survives.
	if l2.Frontier() != offsets[3] {
		t.Fatalf("frontier %d after tear, want %d", l2.Frontier(), offsets[3])
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, _ := readAll(t, dir, 0)
	if !reflect.DeepEqual(starts, offsets[:3]) {
		t.Fatalf("post-tear read %v, want %v", starts, offsets[:3])
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncRotate, SyncNever} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: pol, SegmentBytes: 256})
		if err != nil {
			t.Fatalf("Open(%d): %v", pol, err)
		}
		offsets := appendN(t, l, 12, 0)
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync(%d): %v", pol, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close(%d): %v", pol, err)
		}
		starts, _ := readAll(t, dir, 0)
		if !reflect.DeepEqual(starts, offsets) {
			t.Fatalf("policy %d read %v, want %v", pol, starts, offsets)
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, _, err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatalf("oversize append accepted")
	}
}

func TestRuntTailSegmentRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	offsets := appendN(t, l, 12, 0)
	frontier := l.Frontier()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash between segment create and header write leaves a runt
	// file: fabricate one at the frontier.
	runt := filepath.Join(dir, segmentName(frontier))
	if err := os.WriteFile(runt, []byte("INSW"), 0o644); err != nil {
		t.Fatalf("write runt: %v", err)
	}
	starts, _ := readAll(t, dir, 0)
	if !reflect.DeepEqual(starts, offsets) {
		t.Fatalf("read with runt tail %v, want %v", starts, offsets)
	}
	l, err = Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen with runt tail: %v", err)
	}
	if l.Frontier() != frontier {
		t.Fatalf("frontier %d, want %d", l.Frontier(), frontier)
	}
	appendN(t, l, 1, 555)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, _ = readAll(t, dir, 0)
	if len(starts) != len(offsets)+1 {
		t.Fatalf("%d records after runt recovery, want %d", len(starts), len(offsets)+1)
	}
}
