package streams

import (
	"context"
	"fmt"
	"testing"
)

func mkBatch(typ, source string, n int) *Batch {
	b := GetBatch(typ, source)
	for i := 0; i < n; i++ {
		b.Append(int64(100+i), int64(110+i), fmt.Sprintf("k%d", i%3))
		b.FloatCol("density").AppendFloat(float64(i) / 10)
		b.IntCol("delay").AppendInt(int64(i * 2))
		b.BoolCol("congested").AppendBool(i%2 == 0)
		b.StrCol("line").AppendStr(fmt.Sprintf("L%d", i%2))
	}
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	b := mkBatch("move", "bus", 5)
	defer b.Release()
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Fatalf("len = %d, want 5", b.Len())
	}
	it := b.ItemAt(3)
	if got := it.String(RowType); got != "move" {
		t.Errorf("type = %q", got)
	}
	if got := it.Int(RowTime); got != 103 {
		t.Errorf("time = %d", got)
	}
	if got := it.Int(RowArrival); got != 113 {
		t.Errorf("arrival = %d", got)
	}
	if got := it.String(RowKey); got != "k0" {
		t.Errorf("key = %q", got)
	}
	if got := it.String(RowSource); got != "bus" {
		t.Errorf("source = %q", got)
	}
	if got := it.Float("density"); got != 0.3 {
		t.Errorf("density = %v", got)
	}
	if got := it.Int("delay"); got != 6 {
		t.Errorf("delay = %d", got)
	}
	if it.Bool("congested") {
		t.Error("congested = true, want false")
	}
	if got := it.String("line"); got != "L1" {
		t.Errorf("line = %q", got)
	}
	// The string dictionary interns: 2 distinct values over 5 rows.
	if got := len(b.StrCol("line").Dict); got != 2 {
		t.Errorf("line dict size = %d, want 2", got)
	}
}

func TestBatchAppendRowFrom(t *testing.T) {
	src := mkBatch("move", "bus", 4)
	dst := GetBatch("move", "bus")
	dst.AppendRowFrom(src, 2)
	dst.AppendRowFrom(src, 0)
	if err := dst.Check(); err != nil {
		t.Fatal(err)
	}
	want := src.ItemAt(2)
	got := dst.ItemAt(0)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("row copy: %s = %v, want %v", k, got[k], v)
		}
	}
	src.Release()
	dst.Release()
}

func TestBatchEnvelope(t *testing.T) {
	b := NewBatch("traffic", "scats-north")
	it := BatchItem(b)
	got, ok := ItemBatch(it)
	if !ok || got != b {
		t.Fatal("envelope round-trip failed")
	}
	if _, ok := ItemBatch(Item{"x": 1}); ok {
		t.Fatal("plain item mistaken for envelope")
	}
}

func TestBatchUseAfterReleasePanics(t *testing.T) {
	for name, use := range map[string]func(*Batch){
		"Append":        func(b *Batch) { b.Append(1, 2, "k") },
		"ItemAt":        func(b *Batch) { b.ItemAt(0) },
		"AppendRowFrom": func(b *Batch) { NewBatch("move", "x").AppendRowFrom(b, 0) },
		"Release":       func(b *Batch) { b.Release() },
	} {
		b := mkBatch("move", "panic-test", 1)
		b.Release()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on released batch did not panic", name)
				}
			}()
			use(b)
		}()
	}
}

func TestBatchPoolRecyclesSchema(t *testing.T) {
	before := LiveBatches()
	b := mkBatch("move", "pool-test", 3)
	if got := LiveBatches(); got != before+1 {
		t.Fatalf("live = %d, want %d", got, before+1)
	}
	dict := len(b.StrCol("line").Dict)
	b.Release()
	if got := LiveBatches(); got != before {
		t.Fatalf("live after release = %d, want %d", got, before)
	}
	// The recycled buffer keeps the column layout and dictionary but
	// no rows.
	b2 := GetBatch("move", "pool-test")
	defer b2.Release()
	if b2.Len() != 0 {
		t.Fatalf("recycled batch has %d rows", b2.Len())
	}
	if b2 == b { // same buffer came back: schema must have survived
		if got := len(b2.StrCol("line").Dict); got != dict {
			t.Errorf("recycled dict size = %d, want %d", got, dict)
		}
	}
}

// TestBatchExpansionThroughChain pipes a batch through a process whose
// processors are not batch-aware: the chain must expand the rows into
// compatibility items, pipe each through, and release the batch.
func TestBatchExpansionThroughChain(t *testing.T) {
	before := LiveBatches()
	b := mkBatch("move", "expand-test", 4)
	drop := ProcessorFunc(func(it Item) (Item, error) {
		if it.Bool("congested") {
			return nil, nil
		}
		return it, nil
	})
	sink := NewCollectorSink()
	p := &Process{Name: "expand", Input: NewSliceSource(BatchItem(b)), Processors: []Processor{drop}, Output: sink}
	if err := p.run(context.Background(), newSupervisor([]*Process{p})); err != nil {
		t.Fatal(err)
	}
	// Rows 1 and 3 survive (congested = i%2==0 drops 0 and 2).
	items := sink.Items()
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	if got := items[0].Int(RowTime); got != 101 {
		t.Errorf("first surviving row time = %d, want 101", got)
	}
	if got := LiveBatches(); got != before {
		t.Errorf("live batches = %d, want %d (expanded batch must be released)", got, before)
	}
}

// TestBatchAwareProcessorOwnership checks a BatchProcessor in the
// chain receives the whole batch and its outputs flow on.
func TestBatchAwareProcessorOwnership(t *testing.T) {
	before := LiveBatches()
	b := mkBatch("move", "aware-test", 3)
	sink := NewCollectorSink()
	sum := &summingBatchProcessor{}
	p := &Process{Name: "aware", Input: NewSliceSource(BatchItem(b)), Processors: []Processor{sum}, Output: sink}
	if err := p.run(context.Background(), newSupervisor([]*Process{p})); err != nil {
		t.Fatal(err)
	}
	items := sink.Items()
	if len(items) != 1 || items[0].Int("rows") != 3 {
		t.Fatalf("items = %v, want one summary of 3 rows", items)
	}
	if got := LiveBatches(); got != before {
		t.Errorf("live batches = %d, want %d", got, before)
	}
}

type summingBatchProcessor struct{}

func (summingBatchProcessor) Process(it Item) (Item, error) { return it, nil }

func (summingBatchProcessor) ProcessBatch(b *Batch) ([]Item, error) {
	n := b.Len()
	b.Release()
	return []Item{{"rows": int64(n)}}, nil
}

// TestChaosBatchRowFaulting checks row-level drop/dup faulting over
// batched transport consumes the same rng draws as per-item faulting:
// the surviving rows must be exactly the surviving items.
func TestChaosBatchRowFaulting(t *testing.T) {
	const n = 200
	spec := FaultSpec{Seed: 42, DropProb: 0.2, DupProb: 0.1}

	// Per-item reference.
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{"i": int64(i)}
	}
	ref := NewChaosSource(NewSliceSource(items...), spec)
	var want []int64
	for {
		it, ok := ref.Read()
		if !ok {
			break
		}
		want = append(want, it.Int("i"))
	}

	// Batched: the same 200 events in 4 batches of 50.
	before := LiveBatches()
	var envs []Item
	for bi := 0; bi < 4; bi++ {
		b := GetBatch("t", "chaos-batch-test")
		for i := 0; i < 50; i++ {
			b.Append(int64(bi*50+i), int64(bi*50+i), "k")
		}
		envs = append(envs, BatchItem(b))
	}
	cs := NewChaosSource(NewSliceSource(envs...), spec)
	var got []int64
	for {
		it, ok := cs.Read()
		if !ok {
			break
		}
		fb, isBatch := ItemBatch(it)
		if !isBatch {
			t.Fatalf("chaos emitted a non-batch item: %v", it)
		}
		got = append(got, fb.Times...)
		fb.Release()
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("faulted rows = %v\nwant %v", got, want)
	}
	st := cs.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("stats = %+v, want drops and dups", st)
	}
	if live := LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d", live, before)
	}
}
