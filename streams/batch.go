package streams

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Columnar batches. The map-per-event Item representation pays an
// allocation, interface boxing and hash lookups per attribute per
// stage; a Batch carries thousands of homogeneous events per handoff
// as a struct of arrays — timestamps, entity keys and numeric columns
// in flat slices, categorical attributes dictionary-encoded into small
// string tables. Batches ride through the existing Item/Queue plumbing
// wrapped in a one-entry envelope item (BatchItem), so every queue,
// source wrapper and sink keeps working; processors that understand
// batches implement BatchProcessor, and everything else receives the
// rows lazily materialized as plain Items (ItemAt).
//
// Pooling lifecycle: GetBatch hands out recycled buffers from a
// per-schema pool and Release returns them. Ownership transfers
// downstream with the envelope item: whoever consumes the rows (a
// batch-aware processor that copied what it needs, or the chain after
// expanding the rows for a non-batch-aware processor) calls Release.
// A released batch must never be touched again — Append, AppendRowFrom
// and ItemAt panic on a released batch, turning aliasing bugs into
// immediate failures instead of silent data corruption.

// ColKind is the value type of one batch column.
type ColKind uint8

const (
	// ColFloat is a float64 column.
	ColFloat ColKind = iota
	// ColInt is an int64 column.
	ColInt
	// ColBool is a bool column.
	ColBool
	// ColStr is a dictionary-encoded string column: SIdx holds per-row
	// indexes into the small Dict table of distinct values.
	ColStr
)

// Col is one named column of a Batch. Exactly one of the data slices
// is populated, according to Kind; all populated slices have one entry
// per batch row.
type Col struct {
	Name string
	Kind ColKind

	F    []float64
	I    []int64
	B    []bool
	SIdx []uint32
	Dict []string

	// dict is the interning index over Dict, built lazily on append.
	dict map[string]uint32
}

// Len returns the number of rows in the column.
func (c *Col) Len() int {
	switch c.Kind {
	case ColFloat:
		return len(c.F)
	case ColInt:
		return len(c.I)
	case ColBool:
		return len(c.B)
	default:
		return len(c.SIdx)
	}
}

// AppendFloat appends a row to a ColFloat column.
func (c *Col) AppendFloat(v float64) { c.F = append(c.F, v) }

// AppendInt appends a row to a ColInt column.
func (c *Col) AppendInt(v int64) { c.I = append(c.I, v) }

// AppendBool appends a row to a ColBool column.
func (c *Col) AppendBool(v bool) { c.B = append(c.B, v) }

// AppendStr appends a row to a ColStr column, interning the value into
// the column dictionary.
func (c *Col) AppendStr(s string) {
	if c.dict == nil {
		c.dict = make(map[string]uint32, 8)
		for i, v := range c.Dict {
			c.dict[v] = uint32(i)
		}
	}
	idx, ok := c.dict[s]
	if !ok {
		idx = uint32(len(c.Dict))
		c.Dict = append(c.Dict, s)
		c.dict[s] = idx
	}
	c.SIdx = append(c.SIdx, idx)
}

// Str returns the string value of row i of a ColStr column.
func (c *Col) Str(i int) string { return c.Dict[c.SIdx[i]] }

// Value returns the boxed value of row i, typed by Kind (float64,
// int64, bool or string) — the compatibility bridge for map-shaped
// consumers. It allocates for most values; batch-path code must read
// the typed slices directly instead.
func (c *Col) Value(i int) any {
	switch c.Kind {
	case ColFloat:
		return c.F[i]
	case ColInt:
		return c.I[i]
	case ColBool:
		return c.B[i]
	default:
		return c.Dict[c.SIdx[i]]
	}
}

// reset truncates the column data, keeping the dictionary (and its
// interning index): a recycled batch re-encodes the same categorical
// vocabulary without rebuilding the table.
func (c *Col) reset() {
	c.F = c.F[:0]
	c.I = c.I[:0]
	c.B = c.B[:0]
	c.SIdx = c.SIdx[:0]
}

// Batch is a typed columnar batch of events: one SDE type, one
// originating stream, rows in arrival order. Times and Keys always
// have one entry per row; Arrivals is optional (replay/transport
// metadata) but, when present, also one per row.
type Batch struct {
	// Type is the event type shared by every row (an SDE type name).
	Type string
	// Source is the originating input stream id ("" when not
	// transport-bound).
	Source string

	Times    []int64
	Arrivals []int64
	Keys     []string
	Cols     []Col

	// KIdx/KDict dictionary-encode the entity keys in parallel with
	// Keys: KIdx[i] indexes into the append-only KDict table. Append
	// maintains them; consumers that group rows by key (the RTEC
	// store's per-key index) use the small integer ids instead of
	// hashing the key string per row. Like the column dictionaries,
	// KDict survives pool recycling — entries are never mutated or
	// removed, so an index handed out once stays valid.
	KIdx  []uint32
	KDict []string
	kdict map[string]uint32

	released bool
	pooled   bool
}

// Reserved attribute names used by ItemAt when materializing a row as
// a plain Item. Column names must not collide with them.
const (
	RowType    = "type"
	RowTime    = "time"
	RowArrival = "arrival"
	RowKey     = "key"
	RowSource  = "source"
)

// BatchKey is the envelope attribute under which a *Batch rides inside
// a one-entry Item through queues, sources and sinks.
const BatchKey = "@batch"

// BatchItem wraps a batch as its envelope item.
func BatchItem(b *Batch) Item { return Item{BatchKey: b} }

// ItemBatch unwraps an envelope item; ok is false for ordinary items.
func ItemBatch(it Item) (*Batch, bool) {
	b, ok := it[BatchKey].(*Batch)
	return b, ok
}

// batchPools holds one sync.Pool per (type, source) schema, so a
// recycled buffer always carries the column layout (and string
// dictionaries) its producer expects. Values are *sync.Pool.
var batchPools sync.Map

// liveBatches counts pool-managed batches currently checked out
// (GetBatch minus Release) — the leak observable for tests.
var liveBatches atomic.Int64

// LiveBatches returns the number of pooled batches currently in use.
// A balanced producer/consumer pair leaves the count where it found
// it; tests use the delta to prove no batch leaked past a run.
func LiveBatches() int64 { return liveBatches.Load() }

func poolFor(typ, source string) *sync.Pool {
	key := typ + "\x00" + source
	if p, ok := batchPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := batchPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// NewBatch builds an unpooled batch (tests, one-off producers).
func NewBatch(typ, source string) *Batch {
	return &Batch{Type: typ, Source: source}
}

// GetBatch returns an empty batch for the given type and stream from
// the per-schema pool, allocating one on a cold pool. The caller owns
// it until Release.
func GetBatch(typ, source string) *Batch {
	liveBatches.Add(1)
	if v := poolFor(typ, source).Get(); v != nil {
		b := v.(*Batch)
		b.released = false
		return b
	}
	return &Batch{Type: typ, Source: source, pooled: true}
}

// Release resets the batch and, for pooled batches, returns it to its
// schema pool. The column layout and string dictionaries survive the
// recycle; the row data is truncated. Any later use of the batch
// panics; releasing twice panics too — both are lifecycle bugs.
func (b *Batch) Release() {
	if b.released {
		panic("streams: batch released twice")
	}
	b.released = true
	b.Times = b.Times[:0]
	b.Arrivals = b.Arrivals[:0]
	clear(b.Keys) // don't pin key strings across the pool
	b.Keys = b.Keys[:0]
	b.KIdx = b.KIdx[:0] // KDict/kdict survive, like the column dicts
	for i := range b.Cols {
		b.Cols[i].reset()
	}
	if b.pooled {
		liveBatches.Add(-1)
		poolFor(b.Type, b.Source).Put(b)
	}
}

func (b *Batch) check() {
	if b.released {
		panic("streams: batch used after Release")
	}
}

// Len returns the number of rows.
func (b *Batch) Len() int { return len(b.Times) }

// Append adds the core row fields: occurrence time, arrival time and
// entity key. Pass arrival < 0 to omit the arrival column (the first
// append decides; mixing panics via the length check in Check).
func (b *Batch) Append(t, arrival int64, key string) {
	b.check()
	b.Times = append(b.Times, t)
	if arrival >= 0 {
		b.Arrivals = append(b.Arrivals, arrival)
	}
	b.Keys = append(b.Keys, key)
	id, ok := b.kdict[key]
	if !ok {
		if b.kdict == nil {
			b.kdict = make(map[string]uint32, 16)
		}
		id = uint32(len(b.KDict))
		b.KDict = append(b.KDict, key)
		b.kdict[key] = id
	}
	b.KIdx = append(b.KIdx, id)
}

// col finds the named column, creating it with the given kind on first
// use. Producers must append one value per row to every column they
// ever name in the batch.
func (b *Batch) col(name string, kind ColKind) *Col {
	for i := range b.Cols {
		if b.Cols[i].Name == name {
			return &b.Cols[i]
		}
	}
	b.Cols = append(b.Cols, Col{Name: name, Kind: kind})
	return &b.Cols[len(b.Cols)-1]
}

// FloatCol returns the named float column, creating it if absent.
func (b *Batch) FloatCol(name string) *Col { return b.col(name, ColFloat) }

// IntCol returns the named int column, creating it if absent.
func (b *Batch) IntCol(name string) *Col { return b.col(name, ColInt) }

// BoolCol returns the named bool column, creating it if absent.
func (b *Batch) BoolCol(name string) *Col { return b.col(name, ColBool) }

// StrCol returns the named string column, creating it if absent.
func (b *Batch) StrCol(name string) *Col { return b.col(name, ColStr) }

// Col returns the named column, or nil.
func (b *Batch) Col(name string) *Col {
	for i := range b.Cols {
		if b.Cols[i].Name == name {
			return &b.Cols[i]
		}
	}
	return nil
}

// Check verifies the row-length invariant: every column (and the
// optional arrival slice) has exactly one entry per row.
func (b *Batch) Check() error {
	n := b.Len()
	if len(b.Keys) != n {
		return fmt.Errorf("streams: batch %q has %d keys for %d rows", b.Type, len(b.Keys), n)
	}
	if b.Arrivals != nil && len(b.Arrivals) != n {
		return fmt.Errorf("streams: batch %q has %d arrivals for %d rows", b.Type, len(b.Arrivals), n)
	}
	if b.KIdx != nil && len(b.KIdx) != n {
		return fmt.Errorf("streams: batch %q has %d key indexes for %d rows", b.Type, len(b.KIdx), n)
	}
	for _, id := range b.KIdx {
		if int(id) >= len(b.KDict) {
			return fmt.Errorf("streams: batch %q key index %d outside dictionary of %d", b.Type, id, len(b.KDict))
		}
	}
	for i := range b.Cols {
		if got := b.Cols[i].Len(); got != n {
			return fmt.Errorf("streams: batch %q column %q has %d values for %d rows",
				b.Type, b.Cols[i].Name, got, n)
		}
	}
	return nil
}

// AppendRowFrom copies row i of src (which must share b's schema or
// extend it) onto the end of b. The batch-path row copy: no maps, no
// boxing, string values re-interned through the dictionary.
func (b *Batch) AppendRowFrom(src *Batch, i int) {
	b.check()
	src.check()
	b.Times = append(b.Times, src.Times[i])
	if src.Arrivals != nil {
		b.Arrivals = append(b.Arrivals, src.Arrivals[i])
	}
	key := src.Keys[i]
	b.Keys = append(b.Keys, key)
	id, ok := b.kdict[key]
	if !ok {
		if b.kdict == nil {
			b.kdict = make(map[string]uint32, 16)
		}
		id = uint32(len(b.KDict))
		b.KDict = append(b.KDict, key)
		b.kdict[key] = id
	}
	b.KIdx = append(b.KIdx, id)
	for ci := range src.Cols {
		sc := &src.Cols[ci]
		dc := b.col(sc.Name, sc.Kind)
		switch sc.Kind {
		case ColFloat:
			dc.F = append(dc.F, sc.F[i])
		case ColInt:
			dc.I = append(dc.I, sc.I[i])
		case ColBool:
			dc.B = append(dc.B, sc.B[i])
		default:
			dc.AppendStr(sc.Dict[sc.SIdx[i]])
		}
	}
}

// ItemAt materializes row i as a plain Item — the lazy compatibility
// view handed to processors that are not batch-aware. The row lands
// under the reserved names (RowType, RowTime, RowArrival, RowKey,
// RowSource) plus one entry per column. The item copies every value;
// it stays valid after the batch is released.
func (b *Batch) ItemAt(i int) Item {
	b.check()
	it := make(Item, len(b.Cols)+5)
	it[RowType] = b.Type
	if b.Source != "" {
		it[RowSource] = b.Source
	}
	it[RowTime] = b.Times[i]
	if b.Arrivals != nil {
		it[RowArrival] = b.Arrivals[i]
	}
	it[RowKey] = b.Keys[i]
	for ci := range b.Cols {
		c := &b.Cols[ci]
		it[c.Name] = c.Value(i)
	}
	return it
}

// BatchProcessor is the batch-aware extension of Processor: a
// processor implementing it receives whole batches instead of having
// the chain expand them row by row. ProcessBatch may return any number
// of items (reports, pass-through envelopes, nothing); each output is
// piped through the rest of the chain. Ownership of the batch
// transfers with the call: the implementation either forwards the
// envelope downstream or consumes the rows and calls Release.
type BatchProcessor interface {
	ProcessBatch(*Batch) ([]Item, error)
}
