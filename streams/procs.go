package streams

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Standard processors in the spirit of the Streams framework's
// built-in processor library. All of them are available to XML flow
// definitions through RegisterStdProcessors:
//
//	<processor class="rename" from="v" to="value"/>
//	<processor class="select" keys="value,time"/>
//	<processor class="drop-missing" key="value"/>
//	<processor class="sample" every="10"/>
//	<processor class="limit" count="100"/>
//	<processor class="set" key="source" value="bus"/>
//	<processor class="count" key="n"/>

// Filter keeps only the items the predicate accepts.
func Filter(pred func(Item) bool) Processor {
	return ProcessorFunc(func(it Item) (Item, error) {
		if pred(it) {
			return it, nil
		}
		return nil, nil
	})
}

// Map transforms every item (the function may return the same item).
func Map(f func(Item) Item) Processor {
	return ProcessorFunc(func(it Item) (Item, error) {
		return f(it), nil
	})
}

// Rename moves the attribute from one key to another. Items without
// the source key pass through unchanged.
func Rename(from, to string) Processor {
	return ProcessorFunc(func(it Item) (Item, error) {
		v, ok := it[from]
		if !ok {
			return it, nil
		}
		out := it.Clone()
		delete(out, from)
		out[to] = v
		return out, nil
	})
}

// Select keeps only the listed attributes.
func Select(keys ...string) Processor {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	return ProcessorFunc(func(it Item) (Item, error) {
		out := make(Item, len(want))
		for k, v := range it {
			if want[k] {
				out[k] = v
			}
		}
		return out, nil
	})
}

// DropMissing drops items lacking the attribute (a minimal data
// cleaning step; the raw Dublin feeds contain records with missing
// fields).
func DropMissing(key string) Processor {
	return Filter(func(it Item) bool {
		_, ok := it[key]
		return ok
	})
}

// SampleEvery keeps one item out of every n.
func SampleEvery(n int) Processor {
	if n < 1 {
		n = 1
	}
	var count atomic.Int64
	return ProcessorFunc(func(it Item) (Item, error) {
		if (count.Add(1)-1)%int64(n) == 0 {
			return it, nil
		}
		return nil, nil
	})
}

// LimitFirst passes the first n items and drops the rest.
func LimitFirst(n int) Processor {
	var count atomic.Int64
	return ProcessorFunc(func(it Item) (Item, error) {
		if count.Add(1) <= int64(n) {
			return it, nil
		}
		return nil, nil
	})
}

// Set assigns a constant attribute on every item.
func Set(key string, value any) Processor {
	return ProcessorFunc(func(it Item) (Item, error) {
		out := it.Clone()
		out[key] = value
		return out, nil
	})
}

// Counter counts the items flowing through and optionally stamps the
// running count onto each item under key (empty key = count only).
type Counter struct {
	key   string
	count atomic.Int64
}

// NewCounter builds a counting processor.
func NewCounter(key string) *Counter { return &Counter{key: key} }

// Process implements Processor.
func (c *Counter) Process(it Item) (Item, error) {
	n := c.count.Add(1)
	if c.key == "" {
		return it, nil
	}
	out := it.Clone()
	out[c.key] = n
	return out, nil
}

// Count returns the number of items seen so far.
func (c *Counter) Count() int64 { return c.count.Load() }

// RegisterStdProcessors adds the standard processor classes to a
// registry for use in XML flow definitions.
func RegisterStdProcessors(reg *Registry) error {
	register := func(class string, f ProcessorFactory) error {
		return reg.RegisterProcessor(class, f)
	}
	if err := register("rename", func(p map[string]string) (Processor, error) {
		if p["from"] == "" || p["to"] == "" {
			return nil, fmt.Errorf("streams: rename needs from and to")
		}
		return Rename(p["from"], p["to"]), nil
	}); err != nil {
		return err
	}
	if err := register("select", func(p map[string]string) (Processor, error) {
		if p["keys"] == "" {
			return nil, fmt.Errorf("streams: select needs keys")
		}
		return Select(splitComma(p["keys"])...), nil
	}); err != nil {
		return err
	}
	if err := register("drop-missing", func(p map[string]string) (Processor, error) {
		if p["key"] == "" {
			return nil, fmt.Errorf("streams: drop-missing needs key")
		}
		return DropMissing(p["key"]), nil
	}); err != nil {
		return err
	}
	if err := register("sample", func(p map[string]string) (Processor, error) {
		n, err := strconv.Atoi(p["every"])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("streams: sample needs every >= 1")
		}
		return SampleEvery(n), nil
	}); err != nil {
		return err
	}
	if err := register("limit", func(p map[string]string) (Processor, error) {
		n, err := strconv.Atoi(p["count"])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("streams: limit needs count >= 0")
		}
		return LimitFirst(n), nil
	}); err != nil {
		return err
	}
	if err := register("set", func(p map[string]string) (Processor, error) {
		if p["key"] == "" {
			return nil, fmt.Errorf("streams: set needs key")
		}
		return Set(p["key"], p["value"]), nil
	}); err != nil {
		return err
	}
	return register("count", func(p map[string]string) (Processor, error) {
		return NewCounter(p["key"]), nil
	})
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
