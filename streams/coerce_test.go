package streams

import (
	"encoding/json"
	"math"
	"testing"
)

// TestItemNumericCoercion pins the documented coercion matrix of
// Item.Float and Item.Int across every numeric representation a
// source can produce (native ints from generators, unsigned counters,
// json.Number from decoded feeds), including the documented edge
// semantics: floats truncate toward zero under Int, uint64 values
// above MaxInt64 wrap under Int but convert exactly under Float, and
// unparsable json.Number yields zero.
func TestItemNumericCoercion(t *testing.T) {
	cases := []struct {
		name      string
		value     any
		wantFloat float64
		wantInt   int64
	}{
		{"float64", float64(2.75), 2.75, 2},
		{"float64 negative", float64(-2.75), -2.75, -2},
		{"float32", float32(1.5), 1.5, 1},
		{"int", int(-42), -42, -42},
		{"int32", int32(7), 7, 7},
		{"int64", int64(1 << 40), 1 << 40, 1 << 40},
		{"uint", uint(19), 19, 19},
		{"uint32", uint32(4294967295), 4294967295, 4294967295},
		{"uint64 small", uint64(88), 88, 88},
		// Above MaxInt64: Float converts exactly (2^64-1 rounds to
		// 2^64 in float64), Int wraps two's complement.
		{"uint64 huge", uint64(math.MaxUint64), float64(math.MaxUint64), -1},
		{"json int", json.Number("12345"), 12345, 12345},
		{"json float", json.Number("3.9"), 3.9, 3},
		{"json negative float", json.Number("-3.9"), -3.9, -3},
		// Not an integer literal: Int64 fails, the Float64 fallback
		// parses and truncates.
		{"json exponent", json.Number("1e15"), 1e15, 1000000000000000},
		{"json garbage", json.Number("not-a-number"), 0, 0},
		{"string", "12", 0, 0},
		{"bool", true, 0, 0},
		{"missing", nil, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := Item{}
			if tc.value != nil {
				it["v"] = tc.value
			}
			if got := it.Float("v"); got != tc.wantFloat {
				t.Errorf("Float(%v) = %v, want %v", tc.value, got, tc.wantFloat)
			}
			if got := it.Int("v"); got != tc.wantInt {
				t.Errorf("Int(%v) = %v, want %v", tc.value, got, tc.wantInt)
			}
		})
	}
}
