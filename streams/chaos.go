package streams

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Chaos injection. Urban sensor feeds drop, delay, duplicate and stall
// in the field (the paper's mediators exist precisely to absorb this);
// the chaos wrappers reproduce those faults deterministically so the
// fault-tolerance layer can be exercised in tests and benchmarks. All
// randomness is drawn from a seeded generator: the same FaultSpec over
// the same input yields the same faulted stream, run after run.

// ErrInjected is the root of every error a ChaosProcessor injects;
// match it with errors.Is.
var ErrInjected = errors.New("streams: injected chaos fault")

// FaultSpec configures deterministic fault injection for a
// ChaosSource or ChaosProcessor. The zero value injects nothing.
type FaultSpec struct {
	// Seed drives all sampling. Same seed, same faults.
	Seed int64

	// DropProb is the probability an item is silently lost.
	DropProb float64
	// DupProb is the probability an item is delivered twice.
	DupProb float64
	// DelayProb is the probability an item is held back and
	// re-delivered out of order, after 1..DelayMax subsequent reads.
	DelayProb float64
	// DelayMax bounds the reorder distance (default 8).
	DelayMax int

	// StallAfter > 0 silences the source after it has produced that
	// many items: a stalled mediator. Items arriving during the stall
	// are buffered (the mediator's backlog).
	StallAfter int
	// StallFor is the length of the stall in swallowed items; once it
	// elapses the backlog floods out ahead of new items (a reconnecting
	// mediator delivering late SDEs). 0 means the source never
	// recovers: the backlog is lost and the stream ends silently —
	// a dead region.
	StallFor int

	// ErrProb is the probability a ChaosProcessor fails an item with
	// ErrInjected instead of processing it.
	ErrProb float64
}

// ForStream derives the per-stream child spec: the same fault
// probabilities with a seed mixed from the parent seed and the stream
// id. Stacked chaos wrappers (a ChaosSource under a PacedSource, a
// ChaosProcessor downstream) each consume their own stream's generator,
// so the drop/dup/delay sequence a stream experiences depends only on
// (parent seed, stream id, its own read order) — never on how the
// scheduler interleaves the other streams' reads against it.
func (s FaultSpec) ForStream(id string) FaultSpec {
	// FNV-1a over the id, xor-folded with the parent seed, finished
	// with the splitmix64 mixer so near-identical ids ("scats-north",
	// "scats-south") land in unrelated generator states.
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h ^= uint64(s.Seed)
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	s.Seed = int64(h)
	return s
}

// ChaosStats counts the faults a wrapper has injected so far.
type ChaosStats struct {
	Emitted    int // items delivered downstream
	Dropped    int // items lost to DropProb
	Duplicated int // extra deliveries from DupProb
	Delayed    int // items re-ordered by DelayProb
	Stalled    int // items swallowed or buffered by the stall window
	Errors     int // errors injected (ChaosProcessor only)
}

type heldItem struct {
	it  Item
	due int // remaining reads before release
}

// ChaosSource wraps a Source and injects the faults of its spec. It is
// safe for the single-reader use the topology gives sources; a mutex
// guards stats for concurrent Stats calls.
type ChaosSource struct {
	mu      sync.Mutex
	src     Source
	spec    FaultSpec
	rng     *rand.Rand
	ready   []Item     // due for immediate delivery
	held    []heldItem // delayed items counting down
	backlog []Item     // stall buffer
	pulled  int        // items pulled from the wrapped source
	srcDone bool
	stats   ChaosStats
}

// NewChaosSource wraps src with deterministic fault injection.
func NewChaosSource(src Source, spec FaultSpec) *ChaosSource {
	if spec.DelayMax < 1 {
		spec.DelayMax = 8
	}
	return &ChaosSource{
		src:  src,
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
	}
}

// Stats returns the fault counts so far.
func (c *ChaosSource) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Read implements Source, delivering the faulted stream.
func (c *ChaosSource) Read() (Item, bool) {
	return c.ReadContext(context.Background())
}

// ReadContext implements ContextSource, forwarding cancellation to the
// wrapped source when it supports it (a paced replay source above
// all, whose alignment wait must not outlive the topology).
func (c *ChaosSource) ReadContext(ctx context.Context) (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Count down the held items once per read; due ones become ready.
	kept := c.held[:0]
	for _, h := range c.held {
		h.due--
		if h.due <= 0 {
			c.ready = append(c.ready, h.it)
		} else {
			kept = append(kept, h)
		}
	}
	c.held = kept
	for {
		if len(c.ready) > 0 {
			it := c.ready[0]
			c.ready = c.ready[1:]
			c.stats.Emitted++
			return it, true
		}
		if c.srcDone {
			if c.spec.StallFor > 0 && len(c.backlog) > 0 {
				// The feed ended while the mediator was still buffering:
				// a recovering mediator reconnects at end of feed and
				// delivers its backlog late.
				c.ready = append(c.ready, c.backlog...)
				c.backlog = nil
				continue
			}
			if len(c.held) > 0 {
				// No further reads would release them: flush in order.
				for _, h := range c.held {
					c.ready = append(c.ready, h.it)
				}
				c.held = nil
				continue
			}
			// A never-recovering stall loses its backlog: dead region.
			return nil, false
		}
		var it Item
		var ok bool
		if cs, isCtx := c.src.(ContextSource); isCtx {
			it, ok = cs.ReadContext(ctx)
		} else {
			it, ok = c.src.Read()
		}
		if !ok {
			c.srcDone = true
			continue
		}
		c.pulled++
		if c.spec.StallAfter > 0 && c.pulled > c.spec.StallAfter {
			end := c.spec.StallAfter + c.spec.StallFor
			if c.spec.StallFor <= 0 {
				c.stats.Stalled++
				continue // stalled forever: swallow
			}
			if c.pulled <= end {
				c.stats.Stalled++
				c.backlog = append(c.backlog, it)
				continue // buffering during the stall
			}
			if len(c.backlog) > 0 {
				// Stall over: the backlog floods out first (late
				// items), then the item that ended the stall; none of
				// them are re-faulted.
				c.ready = append(c.ready, c.backlog...)
				c.backlog = nil
				c.ready = append(c.ready, it)
				continue
			}
		}
		if pb, isBatch := ItemBatch(it); isBatch {
			out := c.faultBatchLocked(pb)
			if out == nil {
				continue // every row dropped or held
			}
			c.stats.Emitted++
			return out, true
		}
		if c.spec.DropProb > 0 && c.rng.Float64() < c.spec.DropProb {
			c.stats.Dropped++
			continue
		}
		if c.spec.DelayProb > 0 && c.rng.Float64() < c.spec.DelayProb {
			c.stats.Delayed++
			c.held = append(c.held, heldItem{it: it, due: 1 + c.rng.Intn(c.spec.DelayMax)})
			continue
		}
		if c.spec.DupProb > 0 && c.rng.Float64() < c.spec.DupProb {
			c.stats.Duplicated++
			c.ready = append(c.ready, it.Clone())
		}
		c.stats.Emitted++
		return it, true
	}
}

// faultBatchLocked applies row-level drop/delay/dup faults to a batch
// envelope, consuming rng draws in the exact per-row order of the
// per-item path (drop, then delay, then dup, each guarded by its
// probability) — with the same seed and DelayProb = 0, the faulted
// batched stream carries exactly the rows of the faulted per-item
// stream, in the same order. Delayed rows are held as single-row
// batches whose due countdown runs in batch reads (the reorder unit of
// batched transport). Returns nil when no row survives; otherwise the
// surviving rows in a fresh pooled batch. The input batch is consumed.
func (c *ChaosSource) faultBatchLocked(b *Batch) Item {
	if c.spec.DropProb <= 0 && c.spec.DelayProb <= 0 && c.spec.DupProb <= 0 {
		return BatchItem(b) // nothing to inject: forward untouched
	}
	out := GetBatch(b.Type, b.Source)
	n := b.Len()
	for i := 0; i < n; i++ {
		if c.spec.DropProb > 0 && c.rng.Float64() < c.spec.DropProb {
			c.stats.Dropped++
			continue
		}
		if c.spec.DelayProb > 0 && c.rng.Float64() < c.spec.DelayProb {
			c.stats.Delayed++
			held := GetBatch(b.Type, b.Source)
			held.AppendRowFrom(b, i)
			c.held = append(c.held, heldItem{it: BatchItem(held), due: 1 + c.rng.Intn(c.spec.DelayMax)})
			continue
		}
		out.AppendRowFrom(b, i)
		if c.spec.DupProb > 0 && c.rng.Float64() < c.spec.DupProb {
			c.stats.Duplicated++
			out.AppendRowFrom(b, i)
		}
	}
	b.Release()
	if out.Len() == 0 {
		out.Release()
		return nil
	}
	return BatchItem(out)
}

// ChaosProcessor wraps a Processor and injects errors with
// spec.ErrProb. Retrying the same item redraws the sample, so under a
// Restart supervision policy an injected fault behaves like a
// transient failure.
type ChaosProcessor struct {
	mu    sync.Mutex
	inner Processor
	spec  FaultSpec
	rng   *rand.Rand
	seen  int
	stats ChaosStats
}

// NewChaosProcessor wraps inner with deterministic error injection.
func NewChaosProcessor(inner Processor, spec FaultSpec) *ChaosProcessor {
	return &ChaosProcessor{
		inner: inner,
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
	}
}

// Stats returns the fault counts so far.
func (c *ChaosProcessor) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// draw samples one injection decision (shared by Process and
// ProcessBatch; for batched transport the fault unit is the envelope).
func (c *ChaosProcessor) draw() (fail bool, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen++
	fail = c.spec.ErrProb > 0 && c.rng.Float64() < c.spec.ErrProb
	if fail {
		c.stats.Errors++
	} else {
		c.stats.Emitted++
	}
	return fail, c.seen
}

// Process implements Processor.
func (c *ChaosProcessor) Process(it Item) (Item, error) {
	fail, n := c.draw()
	if fail {
		return nil, fmt.Errorf("%w (item %d)", ErrInjected, n)
	}
	return c.inner.Process(it)
}

// ProcessBatch implements BatchProcessor: one injection draw per batch
// (a transport fault hits the whole envelope), then the batch is
// forwarded to the wrapped processor — natively when it is
// batch-aware, otherwise row by row through its compatibility view.
func (c *ChaosProcessor) ProcessBatch(b *Batch) ([]Item, error) {
	fail, n := c.draw()
	if fail {
		return nil, fmt.Errorf("%w (batch %d)", ErrInjected, n)
	}
	if bp, aware := c.inner.(BatchProcessor); aware {
		return bp.ProcessBatch(b)
	}
	var outs []Item
	rows := b.Len()
	for i := 0; i < rows; i++ {
		out, err := c.inner.Process(b.ItemAt(i))
		if err != nil {
			return outs, err
		}
		if out != nil {
			outs = append(outs, out)
		}
	}
	b.Release()
	return outs, nil
}
