package streams

import (
	"encoding/xml"
	"fmt"
	"io"
)

// The Streams framework describes data flow graphs in an XML-based
// language (Section 3). LoadXML accepts documents of the form
//
//	<application>
//	  <queue id="sdes" capacity="1024"/>
//	  <process id="input" input="bus-stream" output="sdes">
//	    <processor class="rename" from="raw" to="sde"/>
//	  </process>
//	  <service id="trafficModel" class="gp"/>
//	</application>
//
// Processor and service classes are resolved against a Registry of
// factories, the analogue of "adding customized processors ... by
// implementing the respective interfaces of the Streams API". Streams
// (the graph inputs) are bound programmatically via Topology.AddStream
// before or after loading.

// ProcessorFactory builds a processor from the attributes of its XML
// element (every attribute except "class").
type ProcessorFactory func(params map[string]string) (Processor, error)

// ServiceFactory builds a service from its XML attributes.
type ServiceFactory func(params map[string]string) (Service, error)

// Registry resolves processor and service class names.
type Registry struct {
	processors map[string]ProcessorFactory
	services   map[string]ServiceFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		processors: make(map[string]ProcessorFactory),
		services:   make(map[string]ServiceFactory),
	}
}

// RegisterProcessor adds a processor class.
func (r *Registry) RegisterProcessor(class string, f ProcessorFactory) error {
	if _, dup := r.processors[class]; dup {
		return fmt.Errorf("streams: duplicate processor class %q", class)
	}
	r.processors[class] = f
	return nil
}

// RegisterService adds a service class.
func (r *Registry) RegisterService(class string, f ServiceFactory) error {
	if _, dup := r.services[class]; dup {
		return fmt.Errorf("streams: duplicate service class %q", class)
	}
	r.services[class] = f
	return nil
}

// xmlApplication mirrors the document structure.
type xmlApplication struct {
	XMLName   xml.Name     `xml:"application"`
	Queues    []xmlQueue   `xml:"queue"`
	Processes []xmlProcess `xml:"process"`
	Services  []xmlElem    `xml:"service"`
}

type xmlQueue struct {
	ID       string `xml:"id,attr"`
	Capacity int    `xml:"capacity,attr"`
}

type xmlProcess struct {
	ID         string    `xml:"id,attr"`
	Input      string    `xml:"input,attr"`
	Output     string    `xml:"output,attr"`
	Processors []xmlElem `xml:"processor"`
}

// xmlElem captures an element with arbitrary attributes.
type xmlElem struct {
	Attrs []xml.Attr `xml:",any,attr"`
}

func (e xmlElem) params() (class string, params map[string]string) {
	params = make(map[string]string)
	for _, a := range e.Attrs {
		if a.Name.Local == "class" {
			class = a.Value
			continue
		}
		params[a.Name.Local] = a.Value
	}
	return class, params
}

// LoadXML parses a flow definition and adds its queues, processes and
// services to the topology. Inputs referenced by processes must
// already exist in the topology (as streams or queues declared earlier
// in the same document).
func LoadXML(t *Topology, reg *Registry, r io.Reader) error {
	var app xmlApplication
	if err := xml.NewDecoder(r).Decode(&app); err != nil {
		return fmt.Errorf("streams: parsing flow definition: %w", err)
	}
	for _, q := range app.Queues {
		if q.ID == "" {
			return fmt.Errorf("streams: queue without id")
		}
		if _, err := t.AddQueue(q.ID, q.Capacity); err != nil {
			return err
		}
	}
	for _, s := range app.Services {
		class, params := s.params()
		id := params["id"]
		delete(params, "id")
		if id == "" || class == "" {
			return fmt.Errorf("streams: service needs id and class attributes")
		}
		f, ok := reg.services[class]
		if !ok {
			return fmt.Errorf("streams: unknown service class %q", class)
		}
		svc, err := f(params)
		if err != nil {
			return fmt.Errorf("streams: building service %q: %w", id, err)
		}
		if err := t.RegisterService(id, svc); err != nil {
			return err
		}
	}
	for _, p := range app.Processes {
		if p.ID == "" {
			return fmt.Errorf("streams: process without id")
		}
		var procs []Processor
		for i, pe := range p.Processors {
			class, params := pe.params()
			if class == "" {
				return fmt.Errorf("streams: process %q processor %d has no class", p.ID, i)
			}
			f, ok := reg.processors[class]
			if !ok {
				return fmt.Errorf("streams: unknown processor class %q", class)
			}
			proc, err := f(params)
			if err != nil {
				return fmt.Errorf("streams: building processor %q: %w", class, err)
			}
			procs = append(procs, proc)
		}
		if err := t.AddProcess(p.ID, p.Input, p.Output, procs...); err != nil {
			return err
		}
	}
	return nil
}
