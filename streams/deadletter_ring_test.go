package streams

import (
	"errors"
	"fmt"
	"testing"
)

// TestDeadLetterRingBounded drives more failures through a SkipItem
// process than the ring retains: memory stays bounded at
// maxDeadLetters, the retained letters are the newest ones
// oldest-first, and evictions are charged to the evicting process's
// DeadLettersDropped.
func TestDeadLetterRingBounded(t *testing.T) {
	const total = maxDeadLetters + 300
	alwaysFail := ProcessorFunc(func(it Item) (Item, error) {
		return nil, fmt.Errorf("doomed item %d", it.Int("n"))
	})
	top, out := buildLine(t, "worker", numberedItems(total), alwaysFail)
	if err := top.Supervise("worker", SupervisionPolicy{Strategy: SkipItem}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(t.Context()); err != nil {
		t.Fatalf("Run = %v, want nil (SkipItem absorbs failures)", err)
	}
	if out.Len() != 0 {
		t.Fatalf("collected %d items, want 0", out.Len())
	}
	h := top.Health()["worker"]
	if h.Skipped != total {
		t.Errorf("Skipped = %d, want %d", h.Skipped, total)
	}
	if h.DeadLettersDropped != total-maxDeadLetters {
		t.Errorf("DeadLettersDropped = %d, want %d", h.DeadLettersDropped, total-maxDeadLetters)
	}
	dead := top.DeadLetters()
	if len(dead) != maxDeadLetters {
		t.Fatalf("retained %d dead letters, want %d", len(dead), maxDeadLetters)
	}
	// Newest maxDeadLetters items, oldest-first: n = total-max .. total-1.
	for i, dl := range dead {
		if want := int64(total - maxDeadLetters + i); dl.Item.Int("n") != want {
			t.Fatalf("dead[%d].n = %d, want %d", i, dl.Item.Int("n"), want)
		}
		if dl.Process != "worker" {
			t.Fatalf("dead[%d].Process = %q", i, dl.Process)
		}
	}
}

// TestDeadLetterRingUnderCap: below the cap nothing is evicted and
// DeadLettersDropped stays zero.
func TestDeadLetterRingUnderCap(t *testing.T) {
	boom := errors.New("boom")
	failOdd := ProcessorFunc(func(it Item) (Item, error) {
		if it.Int("n")%2 == 1 {
			return nil, boom
		}
		return it, nil
	})
	top, out := buildLine(t, "worker", numberedItems(20), failOdd)
	if err := top.Supervise("worker", SupervisionPolicy{Strategy: SkipItem}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Errorf("collected %d, want the 10 even items", out.Len())
	}
	h := top.Health()["worker"]
	if h.Skipped != 10 || h.DeadLettersDropped != 0 {
		t.Errorf("Skipped = %d, DeadLettersDropped = %d; want 10, 0", h.Skipped, h.DeadLettersDropped)
	}
	dead := top.DeadLetters()
	if len(dead) != 10 {
		t.Fatalf("retained %d dead letters, want 10", len(dead))
	}
	for i, dl := range dead {
		if want := int64(2*i + 1); dl.Item.Int("n") != want {
			t.Fatalf("dead[%d].n = %d, want %d", i, dl.Item.Int("n"), want)
		}
	}
}
