package streams

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		60 * time.Millisecond, // capped
		60 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Deterministic: same attempt, same delay, every time.
	if p.Delay(3) != p.Delay(3) {
		t.Error("Delay must be deterministic")
	}
	// Defaults fill in.
	var zero RetryPolicy
	if zero.Delay(1) != 10*time.Millisecond {
		t.Errorf("zero-value Delay(1) = %v", zero.Delay(1))
	}
}

// buildLine wires src -> proc(name, processors) -> collector and
// returns the topology and collector.
func buildLine(t *testing.T, name string, items []Item, processors ...Processor) (*Topology, *CollectorSink) {
	t.Helper()
	top := NewTopology()
	if err := top.AddStream("in", NewSliceSource(items...)); err != nil {
		t.Fatal(err)
	}
	out := NewCollectorSink()
	if err := top.AddSink("out", out); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess(name, "in", "out", processors...); err != nil {
		t.Fatal(err)
	}
	return top, out
}

// blockingSource never yields an item; its context-aware read parks
// until cancellation, like a queue whose producer went silent.
type blockingSource struct{}

func (blockingSource) Read() (Item, bool) { select {} }

func (blockingSource) ReadContext(ctx context.Context) (Item, bool) {
	<-ctx.Done()
	return nil, false
}

func numberedItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{"n": i}
	}
	return items
}

// A processor failing the first `fails` times it sees the poisoned
// item, succeeding afterwards: a transient fault.
func transientFault(poison int, fails int) Processor {
	var seen atomic.Int64
	return ProcessorFunc(func(it Item) (Item, error) {
		if it.Int("n") == int64(poison) && seen.Add(1) <= int64(fails) {
			return nil, fmt.Errorf("transient fault on %d", poison)
		}
		return it, nil
	})
}

func TestSupervisionRestartRecovers(t *testing.T) {
	top, out := buildLine(t, "worker", numberedItems(10), transientFault(5, 2))
	if err := top.Supervise("worker", SupervisionPolicy{
		Strategy: Restart,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, want recovery", err)
	}
	if out.Len() != 10 {
		t.Errorf("collected %d items, want all 10 (poisoned item must be retried, not lost)", out.Len())
	}
	h := top.Health()["worker"]
	if h.State != HealthDone {
		t.Errorf("health = %v, want done", h.State)
	}
	if h.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", h.Restarts)
	}
	if h.Skipped != 0 || len(top.DeadLetters()) != 0 {
		t.Error("recovered item must not be dead-lettered")
	}
}

func TestSupervisionRestartExhaustedEscalates(t *testing.T) {
	always := ProcessorFunc(func(it Item) (Item, error) {
		if it.Int("n") == 3 {
			return nil, fmt.Errorf("permanent fault")
		}
		return it, nil
	})
	top, _ := buildLine(t, "worker", numberedItems(10), always)
	if err := top.Supervise("worker", SupervisionPolicy{
		Strategy: Restart,
		Retry:    RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	err := top.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "permanent fault") {
		t.Fatalf("Run = %v, want escalated permanent fault", err)
	}
	if !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Errorf("error should name the exhausted attempts: %v", err)
	}
	if h := top.Health()["worker"]; h.State != HealthFailed {
		t.Errorf("health = %v, want failed", h.State)
	}
}

func TestSupervisionRestartExhaustedIsolates(t *testing.T) {
	// Two independent lines: the failing one is isolated, the healthy
	// one must finish untouched and Run must not report an error.
	top := NewTopology()
	if err := top.AddStream("bad", NewSliceSource(numberedItems(5)...)); err != nil {
		t.Fatal(err)
	}
	if err := top.AddStream("good", NewSliceSource(numberedItems(5)...)); err != nil {
		t.Fatal(err)
	}
	out := NewCollectorSink()
	if err := top.AddSink("out", out); err != nil {
		t.Fatal(err)
	}
	boom := ProcessorFunc(func(it Item) (Item, error) { return nil, fmt.Errorf("dead component") })
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	if err := top.AddProcess("failing", "bad", "", boom); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("healthy", "good", "out", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.Supervise("failing", SupervisionPolicy{
		Strategy:    Restart,
		Retry:       RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		OnExhausted: Isolate,
	}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, isolated failure must not abort the topology", err)
	}
	if out.Len() != 5 {
		t.Errorf("healthy line delivered %d items, want 5", out.Len())
	}
	h := top.Health()
	if h["failing"].State != HealthFailed {
		t.Errorf("failing health = %v, want failed", h["failing"].State)
	}
	if h["healthy"].State != HealthDone {
		t.Errorf("healthy health = %v, want done", h["healthy"].State)
	}
	dls := top.DeadLetters()
	if len(dls) != 1 || dls[0].Process != "failing" || dls[0].Attempts != 2 {
		t.Errorf("dead letters = %+v, want the isolated item with 2 attempts", dls)
	}
}

func TestSupervisionIsolateDrainsInput(t *testing.T) {
	// The isolated process is the sole reader of a tiny queue with a
	// large producer stream: without draining, the producer would block
	// forever on the full queue and Run would deadlock.
	top := NewTopology()
	if err := top.AddStream("in", NewSliceSource(numberedItems(500)...)); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddQueue("mid", 1); err != nil {
		t.Fatal(err)
	}
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	boom := ProcessorFunc(func(it Item) (Item, error) { return nil, fmt.Errorf("dead consumer") })
	if err := top.AddProcess("feed", "in", "mid", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("consume", "mid", "", boom); err != nil {
		t.Fatal(err)
	}
	if err := top.Supervise("consume", SupervisionPolicy{
		Strategy:    Restart,
		Retry:       RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		OnExhausted: Isolate,
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- top.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("topology deadlocked: isolated consumer did not drain its input")
	}
	if h := top.Health()["feed"]; h.State != HealthDone {
		t.Errorf("producer health = %v, want done (unblocked by the drain)", h.State)
	}
}

func TestSupervisionSkipItemDeadLetters(t *testing.T) {
	odd := ProcessorFunc(func(it Item) (Item, error) {
		if it.Int("n")%2 == 1 {
			return nil, fmt.Errorf("odd item %d", it.Int("n"))
		}
		return it, nil
	})
	top, out := buildLine(t, "worker", numberedItems(10), odd)
	if err := top.Supervise("worker", SupervisionPolicy{Strategy: SkipItem}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, skip-item must not abort", err)
	}
	if out.Len() != 5 {
		t.Errorf("collected %d items, want the 5 even ones", out.Len())
	}
	h := top.Health()["worker"]
	if h.State != HealthDone || h.Skipped != 5 {
		t.Errorf("health = %+v, want done with 5 skipped", h)
	}
	dls := top.DeadLetters()
	if len(dls) != 5 {
		t.Fatalf("dead letters = %d, want 5", len(dls))
	}
	for _, dl := range dls {
		if dl.Item.Int("n")%2 != 1 || dl.Err == nil || dl.Process != "worker" {
			t.Errorf("malformed dead letter %+v", dl)
		}
	}
}

func TestSuperviseUnknownProcess(t *testing.T) {
	top := NewTopology()
	if err := top.Supervise("ghost", SupervisionPolicy{}); err == nil {
		t.Error("supervising an unknown process must error")
	}
}

func TestHealthBeforeRun(t *testing.T) {
	top, _ := buildLine(t, "worker", numberedItems(1))
	if h := top.Health()["worker"]; h.State != HealthIdle {
		t.Errorf("pre-run health = %v, want idle", h.State)
	}
	if top.DeadLetters() != nil {
		t.Error("pre-run dead letters must be empty")
	}
}

// Queue semantics must survive a writer being restarted: while the
// writer is backing off, the queue stays open and the reader keeps
// consuming; no premature end of stream, no write-on-closed error.
func TestQueueSurvivesWriterRestart(t *testing.T) {
	top := NewTopology()
	if err := top.AddStream("in", NewSliceSource(numberedItems(50)...)); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddQueue("mid", 4); err != nil {
		t.Fatal(err)
	}
	out := NewCollectorSink()
	if err := top.AddSink("out", out); err != nil {
		t.Fatal(err)
	}
	// The writer fails twice on each of the items 7, 17, 27, 37, 47
	// before letting them through: transient faults on five items.
	var mu sync.Mutex
	perItem := map[int64]int{}
	flaky := ProcessorFunc(func(it Item) (Item, error) {
		n := it.Int("n")
		if n%10 != 7 {
			return it, nil
		}
		mu.Lock()
		perItem[n]++
		fail := perItem[n] <= 2
		mu.Unlock()
		if fail {
			return nil, fmt.Errorf("flaky write stage at %d", n)
		}
		return it, nil
	})
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	if err := top.AddProcess("writer", "in", "mid", flaky); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("reader", "mid", "out", pass); err != nil {
		t.Fatal(err)
	}
	if err := top.Supervise("writer", SupervisionPolicy{
		Strategy: Restart,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if out.Len() != 50 {
		t.Errorf("reader saw %d items, want all 50 despite writer restarts", out.Len())
	}
	if h := top.Health()["writer"]; h.Restarts != 10 {
		t.Errorf("writer restarts = %d, want 10 (2 per flaky item)", h.Restarts)
	}
}

// Two sentinel root causes failing in separate processes must both
// surface through errors.Join, with induced cancellations dropped.
func TestRunJoinsAllRootCauses(t *testing.T) {
	errA := errors.New("root cause A")
	errB := errors.New("root cause B")
	top := NewTopology()
	if err := top.AddStream("a", NewSliceSource(numberedItems(1)...)); err != nil {
		t.Fatal(err)
	}
	if err := top.AddStream("b", NewSliceSource(numberedItems(1)...)); err != nil {
		t.Fatal(err)
	}
	// An infinite bystander: it fails only by induced cancellation.
	inf := sourceFunc(func() (Item, bool) { return Item{"n": 1}, true })
	if err := top.AddStream("c", inf); err != nil {
		t.Fatal(err)
	}
	failWith := func(e error) Processor {
		return ProcessorFunc(func(it Item) (Item, error) {
			time.Sleep(20 * time.Millisecond) // let both roots fire before unwind
			return nil, e
		})
	}
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	if err := top.AddProcess("pa", "a", "", failWith(errA)); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("pb", "b", "", failWith(errB)); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("pc", "c", "", pass); err != nil {
		t.Fatal(err)
	}
	err := top.Run(context.Background())
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Errorf("Run = %v, want both root causes joined", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("Run = %v, induced cancellation must be demoted", err)
	}
}

// A root-cause processor error must win over context.DeadlineExceeded
// returned by the processes the deadline killed.
func TestRunPrefersRootCauseOverDeadline(t *testing.T) {
	rootErr := errors.New("the real failure")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	top := NewTopology()
	if err := top.AddStream("a", NewSliceSource(numberedItems(1)...)); err != nil {
		t.Fatal(err)
	}
	if err := top.AddStream("b", blockingSource{}); err != nil {
		t.Fatal(err)
	}
	// pa fails with the root cause exactly when the deadline fires, so
	// it can never be preempted by the run loop's cancellation check;
	// pb is parked in a context-aware read and deterministically
	// returns DeadlineExceeded.
	deadlineFail := ProcessorFunc(func(it Item) (Item, error) {
		<-ctx.Done()
		return nil, rootErr
	})
	pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
	if err := top.AddProcess("pa", "a", "", deadlineFail); err != nil {
		t.Fatal(err)
	}
	if err := top.AddProcess("pb", "b", "", pass); err != nil {
		t.Fatal(err)
	}
	err := top.Run(ctx)
	if !errors.Is(err, rootErr) {
		t.Errorf("Run = %v, want the root cause", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run = %v, DeadlineExceeded must be demoted when a root cause exists", err)
	}
}

// Cancelling a running topology with full queues must unwind every
// goroutine (no leak) and tolerate the queue-closer double-close path.
func TestTopologyShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 25; iter++ {
		top := NewTopology()
		inf := sourceFunc(func() (Item, bool) { return Item{"n": 1}, true })
		if err := top.AddStream("in", inf); err != nil {
			t.Fatal(err)
		}
		// Capacity-1 queue with a slow consumer: the producer is
		// reliably blocked mid-write when the cancel lands.
		if _, err := top.AddQueue("mid", 1); err != nil {
			t.Fatal(err)
		}
		pass := ProcessorFunc(func(it Item) (Item, error) { return it, nil })
		slow := ProcessorFunc(func(it Item) (Item, error) {
			time.Sleep(time.Millisecond)
			return it, nil
		})
		if err := top.AddProcess("produce", "in", "mid", pass); err != nil {
			t.Fatal(err)
		}
		if err := top.AddProcess("consume", "mid", "", slow); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- top.Run(ctx) }()
		time.Sleep(2 * time.Millisecond) // let the queue fill
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run = %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancellation did not stop the topology")
		}
		// The topology's own close must tolerate a racing user Close.
		if q, ok := top.Queue("mid"); ok {
			q.Close() // must not panic
		}
	}
	// Goroutines unwind asynchronously after Run returns; poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 25 cancelled runs",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Flush: a buffering processor must get to emit its tail when the
// input ends, and the flushed items must traverse the rest of the
// processor chain.
type pairBuffer struct {
	buf []Item
}

func (p *pairBuffer) Process(it Item) (Item, error) {
	p.buf = append(p.buf, it)
	if len(p.buf) < 2 {
		return nil, nil
	}
	out := Item{"sum": p.buf[0].Int("n") + p.buf[1].Int("n")}
	p.buf = nil
	return out, nil
}

func (p *pairBuffer) Flush() ([]Item, error) {
	if len(p.buf) == 0 {
		return nil, nil
	}
	out := []Item{{"sum": p.buf[0].Int("n")}}
	p.buf = nil
	return out, nil
}

func TestProcessFlushOnExhaustion(t *testing.T) {
	tag := ProcessorFunc(func(it Item) (Item, error) {
		out := it.Clone()
		out["tagged"] = true
		return out, nil
	})
	top, out := buildLine(t, "pairs", numberedItems(5), &pairBuffer{}, tag)
	if err := top.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	items := out.Items()
	if len(items) != 3 { // pairs (0,1), (2,3) and the flushed odd 4
		t.Fatalf("collected %d items, want 3 (2 pairs + flushed tail)", len(items))
	}
	for _, it := range items {
		if !it.Bool("tagged") {
			t.Errorf("item %v skipped the downstream processors", it)
		}
	}
	if items[2].Int("sum") != 4 {
		t.Errorf("flushed tail = %v, want the lone item 4", items[2])
	}
}
