package streams

import (
	"context"
	"strings"
	"testing"
)

func runThrough(t *testing.T, p Processor, items ...Item) []Item {
	t.Helper()
	var out []Item
	for _, it := range items {
		got, err := p.Process(it)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			out = append(out, got)
		}
	}
	return out
}

func TestFilter(t *testing.T) {
	p := Filter(func(it Item) bool { return it.Float("v") > 0 })
	out := runThrough(t, p, Item{"v": 1.0}, Item{"v": -1.0}, Item{"v": 2.0})
	if len(out) != 2 {
		t.Errorf("Filter kept %d items", len(out))
	}
}

func TestMap(t *testing.T) {
	p := Map(func(it Item) Item {
		out := it.Clone()
		out["v"] = it.Float("v") * 10
		return out
	})
	out := runThrough(t, p, Item{"v": 2.0})
	if out[0].Float("v") != 20 {
		t.Errorf("Map = %v", out[0])
	}
}

func TestRename(t *testing.T) {
	p := Rename("a", "b")
	out := runThrough(t, p, Item{"a": 1, "c": 2})
	if _, ok := out[0]["a"]; ok {
		t.Error("source key should be gone")
	}
	if out[0].Int("b") != 1 || out[0].Int("c") != 2 {
		t.Errorf("Rename = %v", out[0])
	}
	// Missing source key passes through.
	src := Item{"x": 1}
	out = runThrough(t, p, src)
	if out[0].Int("x") != 1 {
		t.Error("item without source key must pass unchanged")
	}
}

func TestSelect(t *testing.T) {
	p := Select("a", "b")
	out := runThrough(t, p, Item{"a": 1, "b": 2, "c": 3})
	if len(out[0]) != 2 || out[0].Int("a") != 1 {
		t.Errorf("Select = %v", out[0])
	}
}

func TestDropMissing(t *testing.T) {
	p := DropMissing("v")
	out := runThrough(t, p, Item{"v": 1}, Item{"x": 1}, Item{"v": nil})
	if len(out) != 2 {
		t.Errorf("DropMissing kept %d", len(out))
	}
}

func TestSampleEvery(t *testing.T) {
	p := SampleEvery(3)
	items := make([]Item, 9)
	for i := range items {
		items[i] = Item{"n": i}
	}
	out := runThrough(t, p, items...)
	if len(out) != 3 {
		t.Fatalf("SampleEvery(3) kept %d of 9", len(out))
	}
	if out[0].Int("n") != 0 || out[1].Int("n") != 3 {
		t.Errorf("kept wrong items: %v", out)
	}
	if p := SampleEvery(0); p == nil {
		t.Error("degenerate n must still build")
	}
}

func TestLimitFirst(t *testing.T) {
	p := LimitFirst(2)
	items := []Item{{"n": 1}, {"n": 2}, {"n": 3}}
	out := runThrough(t, p, items...)
	if len(out) != 2 || out[1].Int("n") != 2 {
		t.Errorf("LimitFirst = %v", out)
	}
}

func TestSetAndCounter(t *testing.T) {
	out := runThrough(t, Set("source", "bus"), Item{"v": 1})
	if out[0].String("source") != "bus" {
		t.Errorf("Set = %v", out[0])
	}
	c := NewCounter("seq")
	out = runThrough(t, c, Item{}, Item{}, Item{})
	if c.Count() != 3 {
		t.Errorf("Count = %d", c.Count())
	}
	if out[2].Int("seq") != 3 {
		t.Errorf("stamped sequence = %v", out[2])
	}
	silent := NewCounter("")
	out = runThrough(t, silent, Item{"v": 1})
	if len(out[0]) != 1 {
		t.Error("keyless counter must not modify items")
	}
}

func TestRegisterStdProcessorsXML(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterStdProcessors(reg); err != nil {
		t.Fatal(err)
	}
	const def = `
<application>
  <process id="clean" input="in" output="out">
    <processor class="drop-missing" key="v"/>
    <processor class="rename" from="v" to="value"/>
    <processor class="set" key="source" value="test"/>
    <processor class="sample" every="2"/>
    <processor class="limit" count="2"/>
    <processor class="select" keys="value,source"/>
    <processor class="count" key="seq"/>
  </process>
</application>`
	top := NewTopology()
	if err := top.AddStream("in", NewSliceSource(
		Item{"v": 1.0}, Item{"x": 9.0}, Item{"v": 2.0}, Item{"v": 3.0},
		Item{"v": 4.0}, Item{"v": 5.0}, Item{"v": 6.0},
	)); err != nil {
		t.Fatal(err)
	}
	sink := NewCollectorSink()
	if err := top.AddSink("out", sink); err != nil {
		t.Fatal(err)
	}
	if err := LoadXML(top, reg, strings.NewReader(def)); err != nil {
		t.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	items := sink.Items()
	// 6 items with v → sample every 2 keeps v=1,3,5 → limit 2 keeps 1,3.
	if len(items) != 2 {
		t.Fatalf("collected %v", items)
	}
	if items[0].Float("value") != 1 || items[1].Float("value") != 3 {
		t.Errorf("pipeline output = %v", items)
	}
	for i, it := range items {
		if it.String("source") != "test" {
			t.Errorf("source missing on %v", it)
		}
		// select runs before count, so seq must survive select? No:
		// count is last, so seq is stamped after selection.
		if it.Int("seq") != int64(i+1) {
			t.Errorf("seq = %v", it)
		}
	}
}

func TestRegisterStdProcessorsErrors(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterStdProcessors(reg); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`<application><process id="p" input="in"><processor class="rename"/></process></application>`,
		`<application><process id="p" input="in"><processor class="select"/></process></application>`,
		`<application><process id="p" input="in"><processor class="drop-missing"/></process></application>`,
		`<application><process id="p" input="in"><processor class="sample" every="x"/></process></application>`,
		`<application><process id="p" input="in"><processor class="limit" count="-1"/></process></application>`,
		`<application><process id="p" input="in"><processor class="set"/></process></application>`,
	}
	for i, def := range bad {
		top := NewTopology()
		if err := top.AddStream("in", NewSliceSource()); err != nil {
			t.Fatal(err)
		}
		if err := LoadXML(top, reg, strings.NewReader(def)); err == nil {
			t.Errorf("case %d: want factory error", i)
		}
	}
}

func TestSplitComma(t *testing.T) {
	cases := map[string][]string{
		"a,b,c": {"a", "b", "c"},
		"a":     {"a"},
		"":      nil,
		"a,,b":  {"a", "b"},
	}
	for in, want := range cases {
		got := splitComma(in)
		if len(got) != len(want) {
			t.Errorf("splitComma(%q) = %v", in, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitComma(%q) = %v", in, got)
			}
		}
	}
}
