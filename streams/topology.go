package streams

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Process is a node of the data flow graph: it reads items from its
// input, pipes each through its processor chain and writes the
// surviving items to its output. Policy decides how processor errors
// are handled (the zero value is fail-fast).
type Process struct {
	Name       string
	Input      Source
	Processors []Processor
	Output     Sink // optional; nil discards
	Policy     SupervisionPolicy

	// outBuf is the reusable output accumulator of processItem: a
	// single input item can fan out (a batch envelope expanding into
	// rows, a BatchProcessor emitting several reports), and reusing
	// the slice keeps the per-item steady state allocation-free.
	outBuf []Item
}

// ContextSource is an optional Source extension whose Read can be
// interrupted by context cancellation; queues implement it so the
// topology can unwind cleanly when a process fails.
type ContextSource interface {
	ReadContext(context.Context) (Item, bool)
}

// ContextSink is the Sink counterpart of ContextSource.
type ContextSink interface {
	WriteContext(context.Context, Item) error
}

// Flusher is an optional Processor extension. When a process's input
// is exhausted, Flush is called once on each flushing processor (in
// chain order); the returned items are piped through the remaining
// processors and written to the process output before the process
// exits. Stateful processors use it to emit buffered results that no
// further input would otherwise release — e.g. the pipeline's event
// processor flushing reports for query boundaries that became due
// simultaneously at end of stream.
type Flusher interface {
	Flush() ([]Item, error)
}

// isolatedError marks a terminal process error whose policy confines
// the failure to the process itself instead of aborting the topology.
type isolatedError struct{ err error }

func (e isolatedError) Error() string { return e.err.Error() }
func (e isolatedError) Unwrap() error { return e.err }

// sleepCtx sleeps d, returning false if the context is cancelled
// first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// applyFrom pipes the item through the processors starting at index
// from, appending every surviving output to dst. A single input can
// produce zero, one or many outputs: a batch envelope handed to a
// non-batch-aware processor is expanded into its row items (each piped
// through the rest of the chain, then the batch released), and a
// BatchProcessor may emit several items per batch.
func (p *Process) applyFrom(from int, it Item, dst []Item) ([]Item, error) {
	if from >= len(p.Processors) {
		return append(dst, it), nil
	}
	proc := p.Processors[from]
	if b, isBatch := ItemBatch(it); isBatch {
		if bp, aware := proc.(BatchProcessor); aware {
			// Ownership of the batch transfers to the processor.
			outs, err := bp.ProcessBatch(b)
			if err != nil {
				return dst, err
			}
			for _, out := range outs {
				var cErr error
				dst, cErr = p.applyFrom(from+1, out, dst)
				if cErr != nil {
					return dst, cErr
				}
			}
			return dst, nil
		}
		// Compatibility expansion: the processor is not batch-aware,
		// so feed it the rows as lazily materialized Items. The rows
		// are copies, so the batch can be released as soon as the last
		// one has been piped. On error the batch is kept live: the
		// supervision layer may dead-letter or retry the envelope.
		n := b.Len()
		for i := 0; i < n; i++ {
			var cErr error
			dst, cErr = p.applyFrom(from, b.ItemAt(i), dst)
			if cErr != nil {
				return dst, cErr
			}
		}
		b.Release()
		return dst, nil
	}
	out, err := proc.Process(it)
	if err != nil {
		return dst, err
	}
	if out == nil {
		return dst, nil
	}
	return p.applyFrom(from+1, out, dst)
}

// processItem applies the processor chain under the process's
// supervision policy, returning the surviving outputs in a buffer that
// is only valid until the next call. An empty result with nil error
// means the item was dropped (by the chain or by dead-lettering); for
// supervision purposes a whole batch envelope counts as one item — a
// failing batch is dead-lettered (and retried) as a unit.
func (p *Process) processItem(ctx context.Context, sup *supervisor, it Item) ([]Item, error) {
	out, err := p.applyFrom(0, it, p.outBuf[:0])
	p.outBuf = out
	if err == nil {
		return out, nil
	}
	switch p.Policy.Strategy {
	case SkipItem:
		sup.deadLetter(p.Name, it, err, 1)
		return nil, nil
	case Restart:
		retry := p.Policy.Retry.normalized()
		for attempt := 1; attempt <= retry.MaxAttempts; attempt++ {
			sup.retrying(p.Name, err)
			if !sleepCtx(ctx, retry.Delay(attempt)) {
				return nil, ctx.Err()
			}
			out, err = p.applyFrom(0, it, p.outBuf[:0])
			p.outBuf = out
			if err == nil {
				sup.state(p.Name, HealthRunning, nil)
				return out, nil
			}
		}
		wrapped := fmt.Errorf("streams: process %q: %d attempts exhausted: %w",
			p.Name, retry.MaxAttempts+1, err)
		if p.Policy.OnExhausted == Isolate {
			sup.deadLetter(p.Name, it, err, retry.MaxAttempts+1)
			return nil, isolatedError{wrapped}
		}
		return nil, wrapped
	default:
		return nil, fmt.Errorf("streams: process %q: %w", p.Name, err)
	}
}

// emit writes an item to the process output (context-aware when the
// sink supports it).
func (p *Process) emit(ctx context.Context, it Item) error {
	var err error
	if cs, isCtx := p.Output.(ContextSink); isCtx {
		err = cs.WriteContext(ctx, it)
	} else {
		err = p.Output.Write(it)
	}
	if err != nil {
		return fmt.Errorf("streams: process %q output: %w", p.Name, err)
	}
	return nil
}

// flush drains the flushing processors once the input is exhausted.
// Flush errors are terminal regardless of policy: there is no next
// item to skip to.
func (p *Process) flush(ctx context.Context) error {
	for i, proc := range p.Processors {
		f, ok := proc.(Flusher)
		if !ok {
			continue
		}
		items, err := f.Flush()
		if err != nil {
			return fmt.Errorf("streams: process %q flush: %w", p.Name, err)
		}
		for _, it := range items {
			outs, err := p.applyFrom(i+1, it, p.outBuf[:0])
			p.outBuf = outs
			if err != nil {
				return fmt.Errorf("streams: process %q flush: %w", p.Name, err)
			}
			if p.Output == nil {
				continue
			}
			for _, out := range outs {
				if err := p.emit(ctx, out); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// run pumps the process until its input is exhausted or the context
// is cancelled, applying the supervision policy to processor errors.
func (p *Process) run(ctx context.Context, sup *supervisor) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		var it Item
		var ok bool
		if cs, isCtx := p.Input.(ContextSource); isCtx {
			it, ok = cs.ReadContext(ctx)
		} else {
			it, ok = p.Input.Read()
		}
		if !ok {
			if err := ctx.Err(); err != nil {
				return err
			}
			return p.flush(ctx)
		}
		outs, err := p.processItem(ctx, sup, it)
		if err != nil {
			return err
		}
		if len(outs) == 0 || p.Output == nil {
			continue
		}
		for _, out := range outs {
			if err := p.emit(ctx, out); err != nil {
				return err
			}
		}
	}
}

// drain consumes and discards a source until it ends or the context is
// cancelled. It keeps upstream producers of an isolated process from
// blocking on a full queue nobody reads any more.
func drain(ctx context.Context, src Source) {
	cs, isCtx := src.(ContextSource)
	for {
		var ok bool
		if isCtx {
			_, ok = cs.ReadContext(ctx)
		} else {
			_, ok = src.Read()
		}
		if !ok || ctx.Err() != nil {
			return
		}
	}
}

// Topology is a compiled data flow graph: named streams, queues,
// services and the processes connecting them.
type Topology struct {
	mu        sync.Mutex
	sources   map[string]Source
	queues    map[string]*Queue
	sinks     map[string]Sink
	services  map[string]Service
	processes []*Process
	// writers counts the processes writing into each queue so the
	// topology can close a queue when its last producer finishes.
	writers map[*Queue]int
	// sup tracks health and dead letters of the current (or last) run.
	sup *supervisor
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		sources:  make(map[string]Source),
		queues:   make(map[string]*Queue),
		sinks:    make(map[string]Sink),
		services: make(map[string]Service),
		writers:  make(map[*Queue]int),
	}
}

// AddStream registers an input stream under an id.
func (t *Topology) AddStream(id string, s Source) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.sources[id]; dup {
		return fmt.Errorf("streams: duplicate stream %q", id)
	}
	t.sources[id] = s
	return nil
}

// AddQueue creates a named queue.
func (t *Topology) AddQueue(id string, capacity int) (*Queue, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.queues[id]; dup {
		return nil, fmt.Errorf("streams: duplicate queue %q", id)
	}
	q := NewQueue(capacity)
	t.queues[id] = q
	return q, nil
}

// Queue returns a queue by id.
func (t *Topology) Queue(id string) (*Queue, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.queues[id]
	return q, ok
}

// AddSink registers an output sink under an id.
func (t *Topology) AddSink(id string, s Sink) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.sinks[id]; dup {
		return fmt.Errorf("streams: duplicate sink %q", id)
	}
	t.sinks[id] = s
	return nil
}

// RegisterService stores a named service.
func (t *Topology) RegisterService(id string, s Service) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.services[id]; dup {
		return fmt.Errorf("streams: duplicate service %q", id)
	}
	t.services[id] = s
	return nil
}

// LookupService retrieves a named service.
func (t *Topology) LookupService(id string) (Service, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.services[id]
	return s, ok
}

// resolveSourceLocked finds a stream or queue by id.
func (t *Topology) resolveSourceLocked(id string) (Source, bool) {
	if s, ok := t.sources[id]; ok {
		return s, true
	}
	if q, ok := t.queues[id]; ok {
		return q, true
	}
	return nil, false
}

// resolveSinkLocked finds a queue or sink by id.
func (t *Topology) resolveSinkLocked(id string) (Sink, bool) {
	if q, ok := t.queues[id]; ok {
		return q, true
	}
	if s, ok := t.sinks[id]; ok {
		return s, true
	}
	return nil, false
}

// AddProcess wires a process between the named input (stream or
// queue) and the named output (queue or sink; "" for none).
func (t *Topology) AddProcess(name, inputID, outputID string, processors ...Processor) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	in, ok := t.resolveSourceLocked(inputID)
	if !ok {
		return fmt.Errorf("streams: process %q: unknown input %q", name, inputID)
	}
	var out Sink
	if outputID != "" {
		out, ok = t.resolveSinkLocked(outputID)
		if !ok {
			return fmt.Errorf("streams: process %q: unknown output %q", name, outputID)
		}
	}
	p := &Process{Name: name, Input: in, Processors: processors, Output: out}
	t.processes = append(t.processes, p)
	if q, isQueue := out.(*Queue); isQueue {
		t.writers[q]++
	}
	return nil
}

// Supervise sets the supervision policy of a named process. It must be
// called after AddProcess and before Run.
func (t *Topology) Supervise(processName string, policy SupervisionPolicy) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.processes {
		if p.Name == processName {
			p.Policy = policy
			return nil
		}
	}
	return fmt.Errorf("streams: supervise: unknown process %q", processName)
}

// Health returns the supervision state of every process, keyed by
// process name, as of the current or most recent Run (idle states
// before the first Run).
func (t *Topology) Health() map[string]ProcessHealth {
	t.mu.Lock()
	sup := t.sup
	processes := t.processes
	t.mu.Unlock()
	if sup == nil {
		out := make(map[string]ProcessHealth, len(processes))
		for _, p := range processes {
			out[p.Name] = ProcessHealth{State: HealthIdle}
		}
		return out
	}
	return sup.snapshot()
}

// DeadLetters returns the items dead-lettered during the current or
// most recent Run (capped at an internal retention limit; the per-
// process Skipped counters are exact).
func (t *Topology) DeadLetters() []DeadLetter {
	t.mu.Lock()
	sup := t.sup
	t.mu.Unlock()
	if sup == nil {
		return nil
	}
	return sup.deadLetters()
}

// Run executes the data flow graph: one goroutine per process, until
// every input stream is exhausted (queues are closed as their last
// producers finish, which cascades shutdown through the graph) or the
// context is cancelled.
//
// Failure handling follows each process's supervision policy: only
// fail-fast errors (and exhausted Restart policies with the Escalate
// action) abort the topology; isolated and skipped failures are
// recorded in Health and DeadLetters while the rest of the graph keeps
// running. Run returns all aborting process errors joined with
// errors.Join, preferring root causes: cancellation errors
// (context.Canceled, context.DeadlineExceeded) induced by the unwind
// are dropped from the joined error whenever a root cause exists.
func (t *Topology) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	t.mu.Lock()
	processes := append([]*Process(nil), t.processes...)
	sup := newSupervisor(processes)
	t.sup = sup
	writers := make(map[*Queue]*sync.WaitGroup, len(t.writers))
	for q, n := range t.writers {
		wg := &sync.WaitGroup{}
		wg.Add(n)
		writers[q] = wg
		go func(q *Queue, wg *sync.WaitGroup) {
			wg.Wait()
			q.Close()
		}(q, wg)
	}
	// Queues nobody writes to would block their readers forever:
	// close them immediately.
	for _, q := range t.queues {
		if _, hasWriter := writers[q]; !hasWriter {
			q.Close()
		}
	}
	t.mu.Unlock()

	errs := make(chan error, len(processes))
	var wg sync.WaitGroup
	for _, p := range processes {
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			err := p.run(ctx, sup)
			var iso isolatedError
			switch {
			case err == nil:
				sup.state(p.Name, HealthDone, nil)
			case errors.As(err, &iso):
				// Confined failure: record it, keep the input flowing
				// for the other consumers/producers, don't abort.
				sup.state(p.Name, HealthFailed, iso.err)
				go drain(ctx, p.Input)
			default:
				sup.state(p.Name, HealthFailed, err)
				errs <- err
				cancel() // unwind the rest of the graph
			}
			// Release the writer count only after a fatal error has
			// cancelled the context: a closed queue means end-of-stream
			// to its readers (they Flush on it), and a crashed producer
			// must never impersonate one. Readers waking on the close
			// observe the close's happens-before edge, so the ctx.Err()
			// check in run sees the cancellation and skips the flush.
			if q, isQueue := p.Output.(*Queue); isQueue {
				writers[q].Done()
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	// Prefer root-cause errors over the cancellations they induced;
	// join every root cause so no co-failing process is hidden.
	var roots, induced []error
	for err := range errs {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			induced = append(induced, err)
			continue
		}
		roots = append(roots, err)
	}
	if len(roots) > 0 {
		return errors.Join(roots...)
	}
	if len(induced) > 0 {
		return induced[0]
	}
	return nil
}
