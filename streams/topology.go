package streams

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Process is a node of the data flow graph: it reads items from its
// input, pipes each through its processor chain and writes the
// surviving items to its output.
type Process struct {
	Name       string
	Input      Source
	Processors []Processor
	Output     Sink // optional; nil discards
}

// ContextSource is an optional Source extension whose Read can be
// interrupted by context cancellation; queues implement it so the
// topology can unwind cleanly when a process fails.
type ContextSource interface {
	ReadContext(context.Context) (Item, bool)
}

// ContextSink is the Sink counterpart of ContextSource.
type ContextSink interface {
	WriteContext(context.Context, Item) error
}

// run pumps the process until its input is exhausted or the context
// is cancelled.
func (p *Process) run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		var it Item
		var ok bool
		if cs, isCtx := p.Input.(ContextSource); isCtx {
			it, ok = cs.ReadContext(ctx)
		} else {
			it, ok = p.Input.Read()
		}
		if !ok {
			if err := ctx.Err(); err != nil {
				return err
			}
			return nil
		}
		var err error
		for _, proc := range p.Processors {
			it, err = proc.Process(it)
			if err != nil {
				return fmt.Errorf("streams: process %q: %w", p.Name, err)
			}
			if it == nil {
				break
			}
		}
		if it == nil || p.Output == nil {
			continue
		}
		if cs, isCtx := p.Output.(ContextSink); isCtx {
			err = cs.WriteContext(ctx, it)
		} else {
			err = p.Output.Write(it)
		}
		if err != nil {
			return fmt.Errorf("streams: process %q output: %w", p.Name, err)
		}
	}
}

// Topology is a compiled data flow graph: named streams, queues,
// services and the processes connecting them.
type Topology struct {
	mu        sync.Mutex
	sources   map[string]Source
	queues    map[string]*Queue
	sinks     map[string]Sink
	services  map[string]Service
	processes []*Process
	// writers counts the processes writing into each queue so the
	// topology can close a queue when its last producer finishes.
	writers map[*Queue]int
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		sources:  make(map[string]Source),
		queues:   make(map[string]*Queue),
		sinks:    make(map[string]Sink),
		services: make(map[string]Service),
		writers:  make(map[*Queue]int),
	}
}

// AddStream registers an input stream under an id.
func (t *Topology) AddStream(id string, s Source) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.sources[id]; dup {
		return fmt.Errorf("streams: duplicate stream %q", id)
	}
	t.sources[id] = s
	return nil
}

// AddQueue creates a named queue.
func (t *Topology) AddQueue(id string, capacity int) (*Queue, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.queues[id]; dup {
		return nil, fmt.Errorf("streams: duplicate queue %q", id)
	}
	q := NewQueue(capacity)
	t.queues[id] = q
	return q, nil
}

// Queue returns a queue by id.
func (t *Topology) Queue(id string) (*Queue, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.queues[id]
	return q, ok
}

// AddSink registers an output sink under an id.
func (t *Topology) AddSink(id string, s Sink) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.sinks[id]; dup {
		return fmt.Errorf("streams: duplicate sink %q", id)
	}
	t.sinks[id] = s
	return nil
}

// RegisterService stores a named service.
func (t *Topology) RegisterService(id string, s Service) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.services[id]; dup {
		return fmt.Errorf("streams: duplicate service %q", id)
	}
	t.services[id] = s
	return nil
}

// LookupService retrieves a named service.
func (t *Topology) LookupService(id string) (Service, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.services[id]
	return s, ok
}

// resolveSource finds a stream or queue by id.
func (t *Topology) resolveSource(id string) (Source, bool) {
	if s, ok := t.sources[id]; ok {
		return s, true
	}
	if q, ok := t.queues[id]; ok {
		return q, true
	}
	return nil, false
}

// resolveSink finds a queue or sink by id.
func (t *Topology) resolveSink(id string) (Sink, bool) {
	if q, ok := t.queues[id]; ok {
		return q, true
	}
	if s, ok := t.sinks[id]; ok {
		return s, true
	}
	return nil, false
}

// AddProcess wires a process between the named input (stream or
// queue) and the named output (queue or sink; "" for none).
func (t *Topology) AddProcess(name, inputID, outputID string, processors ...Processor) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	in, ok := t.resolveSource(inputID)
	if !ok {
		return fmt.Errorf("streams: process %q: unknown input %q", name, inputID)
	}
	var out Sink
	if outputID != "" {
		out, ok = t.resolveSink(outputID)
		if !ok {
			return fmt.Errorf("streams: process %q: unknown output %q", name, outputID)
		}
	}
	p := &Process{Name: name, Input: in, Processors: processors, Output: out}
	t.processes = append(t.processes, p)
	if q, isQueue := out.(*Queue); isQueue {
		t.writers[q]++
	}
	return nil
}

// Run executes the data flow graph: one goroutine per process, until
// every input stream is exhausted (queues are closed as their last
// producers finish, which cascades shutdown through the graph) or the
// context is cancelled. It returns the first process error, if any.
func (t *Topology) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	t.mu.Lock()
	processes := append([]*Process(nil), t.processes...)
	writers := make(map[*Queue]*sync.WaitGroup, len(t.writers))
	for q, n := range t.writers {
		wg := &sync.WaitGroup{}
		wg.Add(n)
		writers[q] = wg
		go func(q *Queue, wg *sync.WaitGroup) {
			wg.Wait()
			q.Close()
		}(q, wg)
	}
	// Queues nobody writes to would block their readers forever:
	// close them immediately.
	for _, q := range t.queues {
		if _, hasWriter := writers[q]; !hasWriter {
			q.Close()
		}
	}
	t.mu.Unlock()

	errs := make(chan error, len(processes))
	var wg sync.WaitGroup
	for _, p := range processes {
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			err := p.run(ctx)
			if q, isQueue := p.Output.(*Queue); isQueue {
				writers[q].Done()
			}
			if err != nil {
				errs <- err
				cancel() // unwind the rest of the graph
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	// Prefer the root-cause error over cancellations it induced.
	var first error
	for err := range errs {
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	return first
}
