package streams

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPacerBoundsSkew replays three streams concurrently and checks
// the alignment guarantee: whenever a stream emits an item timestamped
// t, every other live stream has announced progress within slack of t
// — observable as t never exceeding another stream's last emission by
// more than slack plus one item step.
func TestPacerBoundsSkew(t *testing.T) {
	const slack, step, n = 50, 10, 100
	ids := []string{"a", "b", "c"}
	p := NewPacer(slack)
	for _, id := range ids {
		p.Register(id, 0)
	}

	var mu sync.Mutex
	last := map[string]int64{"a": -step, "b": -step, "c": -step}
	var violations []string

	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ts := int64(i * step)
				if !p.Wait(context.Background(), id, ts) {
					t.Error("Wait returned false without cancellation")
					return
				}
				mu.Lock()
				for other, lo := range last {
					if other == id {
						continue
					}
					// The other stream's announced clock is at most one
					// step past its last emission.
					if ts > lo+step+slack {
						violations = append(violations, id)
					}
				}
				last[id] = ts
				mu.Unlock()
			}
			p.Finish(id)
		}(id)
	}
	wg.Wait()
	if len(violations) > 0 {
		t.Errorf("%d emissions ran more than slack ahead of a live peer", len(violations))
	}
}

// TestPacerFinishedStreamDoesNotConstrain: once a stream ends, the
// rest replay unconstrained by it.
func TestPacerFinishedStreamDoesNotConstrain(t *testing.T) {
	p := NewPacer(10)
	p.Register("live", 0)
	p.Register("dead", 0)
	p.Finish("dead")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if !p.Wait(context.Background(), "live", int64(i*100)) {
				t.Error("Wait returned false without cancellation")
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("live stream blocked behind a finished one")
	}
}

// TestPacerWaitCancellation: a stream parked behind a stalled peer is
// released by context cancellation.
func TestPacerWaitCancellation(t *testing.T) {
	p := NewPacer(10)
	p.Register("fast", 0)
	p.Register("stuck", 0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		done <- p.Wait(ctx, "fast", 1000) // far beyond stuck+slack
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("Wait = true, want false after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait not released by cancellation")
	}
}

// TestPacedSourceAligns: two paced slice sources drained concurrently
// stay within the slack bound; exhaustion of one frees the other.
func TestPacedSourceAligns(t *testing.T) {
	timeOf := func(it Item) (int64, bool) { return it.Int("t"), true }
	mkItems := func(n, step int) []Item {
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{"t": int64(i * step)}
		}
		return items
	}
	p := NewPacer(20)
	// Short stream ends early; the long one must still drain fully.
	short := NewPacedSource(NewSliceSource(mkItems(5, 10)...), p, "short", 0, timeOf)
	long := NewPacedSource(NewSliceSource(mkItems(200, 10)...), p, "long", 0, timeOf)

	var wg sync.WaitGroup
	counts := make([]int, 2)
	for i, src := range []*PacedSource{short, long} {
		wg.Add(1)
		go func(i int, src *PacedSource) {
			defer wg.Done()
			for {
				if _, ok := src.Read(); !ok {
					return
				}
				counts[i]++
			}
		}(i, src)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("paced sources did not drain")
	}
	if counts[0] != 5 || counts[1] != 200 {
		t.Errorf("drained %v items, want [5 200]", counts)
	}
}
