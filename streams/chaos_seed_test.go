package streams

import (
	"reflect"
	"testing"
)

func TestForStreamDerivation(t *testing.T) {
	base := FaultSpec{Seed: 42, DropProb: 0.1, DupProb: 0.2}
	a1, a2 := base.ForStream("scats-north"), base.ForStream("scats-north")
	if a1 != a2 {
		t.Fatalf("ForStream not deterministic: %+v vs %+v", a1, a2)
	}
	if a1.DropProb != base.DropProb || a1.DupProb != base.DupProb {
		t.Fatalf("ForStream must keep fault probabilities: %+v", a1)
	}
	b := base.ForStream("scats-south")
	if a1.Seed == b.Seed {
		t.Fatalf("streams %q and %q derived the same child seed", "scats-north", "scats-south")
	}
	if a1.Seed == base.Seed {
		t.Fatalf("child seed equals parent seed")
	}
	other := FaultSpec{Seed: 43}.ForStream("scats-north")
	if other.Seed == a1.Seed {
		t.Fatalf("different parent seeds derived the same child seed")
	}
}

// chaosDrain reads n faulted streams in the read order given by
// schedule (a sequence of stream indexes) and returns each stream's
// delivered items in order.
func chaosDrain(t *testing.T, specs []FaultSpec, perStream [][]Item, schedule []int) [][]Item {
	t.Helper()
	srcs := make([]*ChaosSource, len(specs))
	for i := range specs {
		srcs[i] = NewChaosSource(NewSliceSource(perStream[i]...), specs[i])
	}
	out := make([][]Item, len(specs))
	done := make([]bool, len(specs))
	for _, i := range schedule {
		if done[i] {
			continue
		}
		it, ok := srcs[i].Read()
		if !ok {
			done[i] = true
			continue
		}
		out[i] = append(out[i], it)
	}
	for i := range srcs {
		for !done[i] {
			it, ok := srcs[i].Read()
			if !ok {
				done[i] = true
				continue
			}
			out[i] = append(out[i], it)
		}
	}
	return out
}

// TestChaosScheduleIndependence pins the composability contract: with
// per-stream child seeds, the faulted sequence each stream delivers
// depends only on its own read order — interleaving the streams'
// reads differently (as goroutine scheduling does when ChaosSource
// stacks on PacedSource) never changes any stream's output.
func TestChaosScheduleIndependence(t *testing.T) {
	base := FaultSpec{Seed: 7, DropProb: 0.3, DupProb: 0.2, DelayProb: 0.25, DelayMax: 4}
	ids := []string{"bus", "scats-north", "scats-south"}
	specs := make([]FaultSpec, len(ids))
	perStream := make([][]Item, len(ids))
	for i, id := range ids {
		specs[i] = base.ForStream(id)
		for n := 0; n < 40; n++ {
			perStream[i] = append(perStream[i], Item{"stream": id, "n": n})
		}
	}

	// Round-robin schedule vs a bursty one vs strictly sequential.
	var roundRobin, bursty, sequential []int
	for n := 0; n < 200; n++ {
		roundRobin = append(roundRobin, n%len(ids))
		bursty = append(bursty, (n/7)%len(ids))
	}
	for i := range ids {
		for n := 0; n < 60; n++ {
			sequential = append(sequential, i)
		}
	}

	a := chaosDrain(t, specs, clonePerStream(perStream), roundRobin)
	b := chaosDrain(t, specs, clonePerStream(perStream), bursty)
	c := chaosDrain(t, specs, clonePerStream(perStream), sequential)
	for i, id := range ids {
		if !reflect.DeepEqual(a[i], b[i]) || !reflect.DeepEqual(a[i], c[i]) {
			t.Fatalf("stream %q delivered different sequences under different schedules:\n%v\n%v\n%v",
				id, a[i], b[i], c[i])
		}
		if len(a[i]) == 0 {
			t.Fatalf("stream %q delivered nothing — fault probabilities ate the whole stream", id)
		}
	}
}

func clonePerStream(perStream [][]Item) [][]Item {
	out := make([][]Item, len(perStream))
	for i, items := range perStream {
		out[i] = make([]Item, len(items))
		for j, it := range items {
			out[i][j] = it.Clone()
		}
	}
	return out
}
