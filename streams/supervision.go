package streams

import (
	"math"
	"sync"
	"time"
)

// Supervision of processes. The Streams backbone carries unreliable
// urban sensor feeds (Section 2 of the paper lists volume, veracity
// and velocity as the operational challenges), so a single failing
// processor must not tear down the whole data-flow graph. Each
// process carries a SupervisionPolicy deciding what happens when one
// of its processors returns an error:
//
//   - FailFast (the default) aborts the topology, the pre-supervision
//     behaviour;
//   - Restart re-runs the processor chain on the failing item after a
//     capped exponential backoff, up to RetryPolicy.MaxAttempts extra
//     attempts; what happens when the attempts are exhausted is decided
//     by OnExhausted;
//   - SkipItem routes the failing item to the topology's dead-letter
//     queue and continues with the next item.
//
// Queues survive a supervised writer being restarted: a writer counts
// as live for queue-close accounting until it exits terminally, so
// downstream readers never observe a premature end of stream while a
// producer is merely backing off.

// Strategy selects how a process reacts to a processor error.
type Strategy int

// Supervision strategies.
const (
	// FailFast aborts the whole topology on the first processor error.
	FailFast Strategy = iota
	// Restart retries the processor chain on the failing item with
	// backoff; see RetryPolicy and ExhaustAction.
	Restart
	// SkipItem dead-letters the failing item and continues.
	SkipItem
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case FailFast:
		return "fail-fast"
	case Restart:
		return "restart"
	case SkipItem:
		return "skip-item"
	}
	return "strategy(?)"
}

// ExhaustAction decides what a Restart policy does once its attempts
// are exhausted.
type ExhaustAction int

// Exhaustion actions.
const (
	// Escalate aborts the topology with the last error (default).
	Escalate ExhaustAction = iota
	// Isolate stops only the failing process: it is marked
	// HealthFailed, its item is dead-lettered, its output queue closes
	// once its co-writers finish, and its input is drained so upstream
	// producers are not blocked — the rest of the graph keeps running.
	Isolate
)

// RetryPolicy is a capped exponential backoff. It is deterministic
// (jitter-free) so supervised runs stay reproducible under test.
type RetryPolicy struct {
	// MaxAttempts is the number of retries after the initial failure.
	// Default 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Default 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 1s.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries.
	// Default 2.
	Multiplier float64
}

func (r RetryPolicy) normalized() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 10 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = time.Second
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	return r
}

// Delay returns the backoff before the attempt-th retry (1-based):
// BaseDelay·Multiplier^(attempt-1), capped at MaxDelay.
func (r RetryPolicy) Delay(attempt int) time.Duration {
	r = r.normalized()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(r.BaseDelay) * math.Pow(r.Multiplier, float64(attempt-1))
	if d > float64(r.MaxDelay) {
		return r.MaxDelay
	}
	return time.Duration(d)
}

// SupervisionPolicy is the per-process fault-handling configuration.
// The zero value is FailFast.
type SupervisionPolicy struct {
	Strategy Strategy
	// Retry configures the Restart strategy's backoff.
	Retry RetryPolicy
	// OnExhausted decides what Restart does after Retry.MaxAttempts
	// failed retries of the same item.
	OnExhausted ExhaustAction
}

// HealthState is the lifecycle state of a process within a run.
type HealthState int

// Process health states.
const (
	// HealthIdle: the topology has not been run yet.
	HealthIdle HealthState = iota
	// HealthRunning: the process is pumping items.
	HealthRunning
	// HealthRetrying: the process hit a processor error and is backing
	// off before a restart attempt.
	HealthRetrying
	// HealthDone: the process exited cleanly (input exhausted).
	HealthDone
	// HealthFailed: the process exited with a terminal error (either
	// aborting the topology or isolated by its policy).
	HealthFailed
)

// String returns the state name.
func (h HealthState) String() string {
	switch h {
	case HealthIdle:
		return "idle"
	case HealthRunning:
		return "running"
	case HealthRetrying:
		return "retrying"
	case HealthDone:
		return "done"
	case HealthFailed:
		return "failed"
	}
	return "health(?)"
}

// ProcessHealth is the supervision view of one process.
type ProcessHealth struct {
	State HealthState
	// Restarts counts retry attempts performed across all items.
	Restarts int
	// Skipped counts items routed to the dead-letter queue.
	Skipped int
	// DeadLettersDropped counts this process's dead letters that were
	// evicted from the bounded retention buffer to make room for newer
	// ones (the letters were still counted in Skipped).
	DeadLettersDropped int
	// LastError is the most recent processor error ("" if none).
	LastError string
}

// DeadLetter is one item a supervised process gave up on.
type DeadLetter struct {
	// Process is the name of the process that dead-lettered the item.
	Process string
	// Item is the offending item.
	Item Item
	// Err is the processor error that condemned it.
	Err error
	// Attempts is how many times the processor chain was tried on it.
	Attempts int
}

// maxDeadLetters bounds the retained dead letters per run. The buffer
// is a ring: under sustained failure the newest maxDeadLetters items
// are kept, the oldest are evicted, and every eviction is charged to
// the evicting process's ProcessHealth.DeadLettersDropped — so memory
// stays bounded while Health() still shows that (and where) evidence
// was lost.
const maxDeadLetters = 1024

// supervisor tracks health and dead letters for one Topology.Run.
type supervisor struct {
	mu     sync.Mutex
	health map[string]*ProcessHealth
	// dead is a ring buffer of the most recent dead letters: once full,
	// deadStart marks the oldest entry, which the next letter evicts.
	// Run-scoped diagnostics surfaced via DeadLetters(), not part of
	// the health snapshot.
	dead      []DeadLetter //state:transient run-scoped dead-letter ring
	deadStart int          //state:transient ring cursor for dead
}

func newSupervisor(processes []*Process) *supervisor {
	s := &supervisor{health: make(map[string]*ProcessHealth, len(processes))}
	for _, p := range processes {
		s.health[p.Name] = &ProcessHealth{State: HealthRunning}
	}
	return s
}

func (s *supervisor) state(name string, st HealthState, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health[name]
	if h == nil {
		h = &ProcessHealth{}
		s.health[name] = h
	}
	h.State = st
	if err != nil {
		h.LastError = err.Error()
	}
}

func (s *supervisor) retrying(name string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health[name]
	if h == nil {
		h = &ProcessHealth{}
		s.health[name] = h
	}
	h.State = HealthRetrying
	h.Restarts++
	h.LastError = err.Error()
}

func (s *supervisor) deadLetter(name string, it Item, err error, attempts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health[name]
	if h == nil {
		h = &ProcessHealth{}
		s.health[name] = h
	}
	h.Skipped++
	h.LastError = err.Error()
	// Snapshot the item: the dead letter must stay readable as-is
	// even if an upstream stage (a chaos duplicator, a retrying
	// processor) keeps mutating the original map.
	dl := DeadLetter{Process: name, Item: it.Clone(), Err: err, Attempts: attempts}
	if len(s.dead) < maxDeadLetters {
		s.dead = append(s.dead, dl)
		return
	}
	evicted := &s.dead[s.deadStart]
	if eh := s.health[evicted.Process]; eh != nil {
		eh.DeadLettersDropped++
	} else {
		s.health[evicted.Process] = &ProcessHealth{DeadLettersDropped: 1}
	}
	s.dead[s.deadStart] = dl
	s.deadStart = (s.deadStart + 1) % maxDeadLetters
}

func (s *supervisor) snapshot() map[string]ProcessHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ProcessHealth, len(s.health))
	for name, h := range s.health {
		out[name] = *h
	}
	return out
}

func (s *supervisor) deadLetters() []DeadLetter {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeadLetter, 0, len(s.dead))
	out = append(out, s.dead[s.deadStart:]...)
	out = append(out, s.dead[:s.deadStart]...)
	return out
}
