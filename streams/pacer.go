package streams

import (
	"context"
	"sync"
)

// Pacer aligns a group of replay sources on a shared virtual clock:
// no stream may emit an item timestamped more than the slack bound
// ahead of the slowest stream still replaying. Without alignment a
// replayed topology loses the arrival interleaving a live deployment
// would see — whichever producer goroutine the scheduler favours races
// a whole window ahead, and anything built on cross-stream arrival
// progress (watermark staleness above all) misfires. This is the
// source watermark alignment of production stream processors, driven
// by item timestamps instead of wall clock so replays stay
// deterministic in the virtual time domain.
//
// Deadlock freedom: a stream announces the timestamp it wants to emit
// before waiting, so the stream holding the globally smallest pending
// timestamp is always admitted. Streams that end (Finish) stop
// constraining the rest.
type Pacer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slack int64
	clock map[string]int64 // announced per-stream progress
	done  map[string]bool
}

// NewPacer creates a pacer with the given slack bound (in the item
// timestamp unit).
func NewPacer(slack int64) *Pacer {
	p := &Pacer{
		slack: slack,
		clock: make(map[string]int64),
		done:  make(map[string]bool),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Register announces a stream before replay starts, with its initial
// clock. Every participating stream must register before any of them
// emits, or it would not constrain the others from the start.
func (p *Pacer) Register(id string, start int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.clock[id]; !ok {
		p.clock[id] = start
	}
	p.cond.Broadcast()
}

// minOthersLocked is the slowest announced clock among the other live
// streams; ok is false when no other stream is live.
func (p *Pacer) minOthersLocked(id string) (int64, bool) {
	min, found := int64(0), false
	for other, c := range p.clock {
		if other == id || p.done[other] {
			continue
		}
		if !found || c < min {
			min, found = c, true
		}
	}
	return min, found
}

// Wait blocks until stream id may emit an item timestamped t, i.e.
// until t is within the slack bound of the slowest other live stream.
// It returns false if the context is cancelled first.
func (p *Pacer) Wait(ctx context.Context, id string, t int64) bool {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	if t > p.clock[id] {
		p.clock[id] = t // announce before waiting: deadlock freedom
		p.cond.Broadcast()
	}
	for {
		if ctx.Err() != nil {
			return false
		}
		min, constrained := p.minOthersLocked(id)
		if !constrained || t <= min+p.slack {
			return true
		}
		p.cond.Wait()
	}
}

// Finish marks the stream as ended; it no longer constrains the
// others.
func (p *Pacer) Finish(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done[id] = true
	p.cond.Broadcast()
}

// PacedSource aligns a replay source on a shared Pacer. Items whose
// timestamp the extractor cannot determine (punctuation markers) pass
// through unpaced.
type PacedSource struct {
	src    Source
	pacer  *Pacer
	id     string
	timeOf func(Item) (int64, bool)
}

// NewPacedSource wraps src; timeOf extracts the pacing timestamp of an
// item (ok false exempts the item). The stream is registered with the
// pacer at the given start clock.
func NewPacedSource(src Source, pacer *Pacer, id string, start int64, timeOf func(Item) (int64, bool)) *PacedSource {
	pacer.Register(id, start)
	return &PacedSource{src: src, pacer: pacer, id: id, timeOf: timeOf}
}

// Read implements Source.
func (s *PacedSource) Read() (Item, bool) {
	return s.ReadContext(context.Background())
}

// ReadContext implements ContextSource: cancellation interrupts both
// the inner read (when supported) and the pacing wait, so a paced
// producer cannot hang topology shutdown.
func (s *PacedSource) ReadContext(ctx context.Context) (Item, bool) {
	var it Item
	var ok bool
	if cs, isCtx := s.src.(ContextSource); isCtx {
		it, ok = cs.ReadContext(ctx)
	} else {
		it, ok = s.src.Read()
	}
	if !ok {
		s.pacer.Finish(s.id)
		return nil, false
	}
	if t, has := s.timeOf(it); has {
		if !s.pacer.Wait(ctx, s.id, t) {
			return nil, false
		}
	}
	return it, true
}
