// Package streams is a Go implementation of the abstractions of the
// Streams framework (Bockermann & Blom 2012) that forms the backbone
// of the INSIGHT system (Section 3 of Artikis et al., EDBT 2014):
//
//   - data items are sets of key-value pairs;
//   - the nodes of the data flow graph are processes, each comprising
//     a sequence of processors; a process takes a stream or a queue as
//     input and processors apply a function to each item;
//   - services are named sets of functions accessible throughout the
//     stream processing application;
//   - data flow graphs are described declaratively (in the original,
//     an XML language; see LoadXML) and compiled into a computation
//     graph for the engine.
package streams

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// Item is one data item: a set of event attributes and their values.
type Item map[string]any

// Clone returns a shallow copy of the item.
func (it Item) Clone() Item {
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v
	}
	return out
}

// String returns a string attribute ("" if absent or differently typed).
func (it Item) String(key string) string {
	s, _ := it[key].(string)
	return s
}

// Float returns a numeric attribute as float64. It coerces every
// numeric payload type the feeds produce — float64/float32,
// int/int32/int64, uint/uint32/uint64, and json.Number (for items
// decoded straight from JSON feeds) — anything else yields 0.
//
// Coercion semantics: integer values above 2^53 lose precision in the
// usual float64 way; uint64 values above math.MaxInt64 convert exactly
// (no wraparound — the conversion goes straight to float64); a
// json.Number that does not parse as a float yields 0.
func (it Item) Float(key string) float64 {
	switch v := it[key].(type) {
	case float64:
		return v
	case float32:
		return float64(v)
	case int:
		return float64(v)
	case int32:
		return float64(v)
	case int64:
		return float64(v)
	case uint:
		return float64(v)
	case uint32:
		return float64(v)
	case uint64:
		return float64(v)
	case json.Number:
		f, err := v.Float64()
		if err != nil {
			return 0
		}
		return f
	}
	return 0
}

// Int returns a numeric attribute as int64, coercing the same payload
// types as Float.
//
// Truncation semantics: floats truncate toward zero (1.9 → 1,
// -1.9 → -1); a uint or uint64 above math.MaxInt64 wraps (two's
// complement conversion) — feeds do not produce such values, and
// callers that could see them must range-check before coercing; a
// json.Number is parsed as an int64 first and falls back to
// parse-as-float-then-truncate, yielding 0 if neither parse succeeds.
func (it Item) Int(key string) int64 {
	switch v := it[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case int32:
		return int64(v)
	case uint:
		return int64(v)
	case uint32:
		return int64(v)
	case uint64:
		return int64(v)
	case float64:
		return int64(v)
	case float32:
		return int64(v)
	case json.Number:
		if n, err := v.Int64(); err == nil {
			return n
		}
		if f, err := v.Float64(); err == nil {
			return int64(f)
		}
		return 0
	}
	return 0
}

// Bool returns a boolean attribute.
func (it Item) Bool(key string) bool {
	b, _ := it[key].(bool)
	return b
}

// Processor applies a function to each data item in a stream.
// Returning a nil item drops the item from the flow; returning an
// error aborts the process.
type Processor interface {
	Process(Item) (Item, error)
}

// ProcessorFunc adapts a function to the Processor interface.
type ProcessorFunc func(Item) (Item, error)

// Process calls f.
func (f ProcessorFunc) Process(it Item) (Item, error) { return f(it) }

// Source yields the items of a stream. Read blocks until an item is
// available or the stream ends (ok = false).
type Source interface {
	Read() (Item, bool)
}

// Sink accepts items.
type Sink interface {
	Write(Item) error
}

// SliceSource is a finite in-memory stream, handy for tests and for
// replaying recorded data.
type SliceSource struct {
	mu    sync.Mutex
	items []Item
	pos   int
}

// NewSliceSource wraps items as a Source.
func NewSliceSource(items ...Item) *SliceSource {
	return &SliceSource{items: items}
}

// Read returns the next item.
func (s *SliceSource) Read() (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.items) {
		return nil, false
	}
	it := s.items[s.pos]
	s.pos++
	return it, true
}

// Queue is a bounded FIFO connecting processes, analogous to the
// queues of the Streams framework. It is both a Source and a Sink.
// Writers must Close the queue (or let the topology do it) to signal
// the end of the stream to readers.
type Queue struct {
	ch     chan Item
	mu     sync.Mutex
	closed bool
}

// NewQueue builds a queue with the given capacity (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{ch: make(chan Item, capacity)}
}

// Write enqueues an item; it blocks while the queue is full and fails
// on a closed queue.
func (q *Queue) Write(it Item) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return fmt.Errorf("streams: write on closed queue")
	}
	q.mu.Unlock()
	q.ch <- it
	return nil
}

// Read dequeues the next item, blocking until one is available or the
// queue is closed and drained.
func (q *Queue) Read() (Item, bool) {
	it, ok := <-q.ch
	return it, ok
}

// ReadContext dequeues the next item, giving up when the context is
// cancelled.
func (q *Queue) ReadContext(ctx context.Context) (Item, bool) {
	select {
	case it, ok := <-q.ch:
		return it, ok
	case <-ctx.Done():
		return nil, false
	}
}

// WriteContext enqueues an item, giving up when the context is
// cancelled.
func (q *Queue) WriteContext(ctx context.Context, it Item) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return fmt.Errorf("streams: write on closed queue")
	}
	q.mu.Unlock()
	select {
	case q.ch <- it:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close marks the end of the stream. Closing twice is a no-op.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.ch) }

// Service is a named set of functions accessible throughout the
// stream processing application — e.g. the traffic modelling procedure
// is "wrapped as a Streams service" (Section 3). Concrete services are
// application-defined; the topology only stores and hands them out.
type Service any

// CollectorSink gathers all items written to it (for tests and result
// extraction).
type CollectorSink struct {
	mu    sync.Mutex
	items []Item
}

// NewCollectorSink returns an empty collector.
func NewCollectorSink() *CollectorSink { return &CollectorSink{} }

// Write stores the item.
func (c *CollectorSink) Write(it Item) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow itemalias a sink is the end of the flow: ownership of the item transfers on Write
	c.items = append(c.items, it)
	return nil
}

// Items returns a copy of everything collected so far.
func (c *CollectorSink) Items() []Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Item, len(c.items))
	copy(out, c.items)
	return out
}

// Len returns the number of collected items.
func (c *CollectorSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// DiscardSink drops every item.
type DiscardSink struct{}

// Write discards the item.
func (DiscardSink) Write(Item) error { return nil }
