# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race cover bench lint lint-json check chaos bench-rtec bench-delay bench-gp bench-recovery bench-shard fuzz-short figures experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The repo's own analyzer suite (cmd/insightlint): determinism,
# goroutine-leak, hot-path allocation, float-equality and lock/alias
# rules over every package. Exits nonzero on any finding; suppress a
# deliberate violation at the site with `//lint:allow rule reason`.
lint:
	$(GO) run ./cmd/insightlint

# Same suite, findings as a machine-readable JSON document on stdout.
lint-json:
	$(GO) run ./cmd/insightlint -json

# CI gate: vet everything, run the repo's own analyzer suite, run the
# full module under the race detector (engine, rule sets, streams
# supervision/shutdown, columnar batch equivalence/chaos tests, blocked
# linalg worker pools, parallel grid search — including the
# crash-equivalence campaign: 20+ WAL kills, torn/corrupt/fsync-crashed
# checkpoints and a torn log tail in one run, recovered output
# bit-identical to the uninterrupted run), re-run the crash gate
# race-free so its assertions are exercised under both schedulers, gate
# the columnar ingest path against the committed allocation budget and
# the column-resident store against the committed resident bytes/event
# advantage over the row store (the race detector inflates allocation
# counts, so those gates run in a separate non-race pass), re-run the
# shard-equivalence gate race-free (the N ∈ {1,2,4,8} × both-store grid
# under chaos, the mid-run rebalance determinism tests and the tier
# snapshot round-trip; the race pass above already exercises them under
# the race scheduler), and finish with a short fuzz pass over the
# factorization/solve, WAL-decode, store block-merge and
# shard-assignment targets.
check: lint
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestCrashEquivalence' -count=1 .
	$(GO) test -run 'TestAllocBudget|TestResidentBudget' -count=1 .
	$(GO) test -run 'TestShardEquivalenceGrid|TestShardRebalanceDeterminism|TestShardAutoRebalancePipeline|TestShardTierSnapshotRoundTrip' -count=1 .
	$(GO) test -run '^$$' -fuzz FuzzCholesky -fuzztime 5s ./internal/linalg
	$(GO) test -run '^$$' -fuzz FuzzSolveVec -fuzztime 5s ./internal/linalg
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 5s ./streams/wal
	$(GO) test -run '^$$' -fuzz FuzzMergeBlock -fuzztime 5s ./rtec
	$(GO) test -run '^$$' -fuzz FuzzShardAssign -fuzztime 5s ./rtec

# The chaos harness: the Dublin pipeline under deterministic fault
# profiles, scored against its own fault-free run.
chaos:
	mkdir -p results
	$(GO) run ./cmd/chaosbench          | tee results/chaos.txt

# The recovery bench: the crash-equivalence campaign as a measurement —
# per-epoch recovery wall time and WAL replay volume across 20 kill →
# recover → resume epochs, committed as BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/crashbench -out BENCH_recovery.json

# The RTEC performance benches (Figure 4 sweep, the step-ratio
# amortization bench, and the map-vs-columnar ingest benches — the
# cold-window and steady-state regimes), 5 repetitions, as a JSON
# event stream for later comparison.
bench-rtec:
	$(GO) test -run '^$$' -bench 'BenchmarkFig4_EventRecognition|BenchmarkStepRatio|BenchmarkIngest|BenchmarkSustainedIngest' \
		-count=5 -timeout 60m -json . | tee BENCH_rtec.json

# The Figure 2 regime ingest bench: map vs columnar delivery of
# arrival-ordered SDEs across sliding-window boundaries, 5 repetitions,
# as a JSON event stream for later comparison.
bench-delay:
	$(GO) test -run '^$$' -bench 'BenchmarkDelayedIngest' \
		-count=5 -timeout 60m -json . | tee BENCH_delay.json

# The GP linalg benches (kernel build, fit, predict-all, grid search at
# n≈512, serial reference vs blocked/parallel kernels), 5 repetitions,
# as a JSON event stream for later comparison. `go run ./cmd/gpbench`
# prints the same stages as a human-readable speedup table.
bench-gp:
	$(GO) test -run '^$$' -bench 'BenchmarkGP_' -benchtime 1x \
		-count=5 -json ./gp | tee BENCH_gp.json

# The shard scaling bench: the N-way sharded recognition tier on the
# 10× Dublin profile (9420 buses, 9660 sensors), modeled cluster
# critical path per shard count, medians of 3 repetitions, committed as
# BENCH_shard.json.
bench-shard:
	$(GO) run ./cmd/shardbench -out BENCH_shard.json

# ~10s of coverage-guided fuzzing per target; linalg regressions land
# in internal/linalg/testdata/fuzz, WAL frame/codec regressions in
# streams/wal/testdata/fuzz, as permanent corpus seeds.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzCholesky -fuzztime 10s ./internal/linalg
	$(GO) test -run '^$$' -fuzz FuzzSolveVec -fuzztime 10s ./internal/linalg
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./streams/wal
	$(GO) test -run '^$$' -fuzz FuzzMergeBlock -fuzztime 10s ./rtec
	$(GO) test -run '^$$' -fuzz FuzzShardAssign -fuzztime 10s ./rtec

# Regenerate every figure of the paper's evaluation into ./results.
figures:
	mkdir -p results
	$(GO) run ./cmd/rtecbench           | tee results/fig4.txt
	$(GO) run ./cmd/crowdbench          | tee results/fig5.txt
	$(GO) run ./cmd/qeebench            | tee results/fig6.txt
	$(GO) run ./cmd/gpmap -out results  | tee results/fig7-9.txt
	$(GO) run ./cmd/datagen -stats      | tee results/dataset.txt

# The extension experiments (ground-truth scoring, ablations).
experiments:
	mkdir -p results
	$(GO) run ./cmd/veracitybench       | tee results/veracity.txt
	$(GO) run ./cmd/delaybench          | tee results/delay.txt
	$(GO) run ./cmd/selectionbench      | tee results/selection.txt

clean:
	rm -rf results
